"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_unknown_command_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["frobnicate"])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "D7", "Q7"])
        assert args.algorithm == "auto"
        assert args.top_k is None
        assert args.num_mappings == 100

    def test_plan_help_derived_from_registry(self):
        from repro.engine import available_plans

        parser = build_parser()
        args = parser.parse_args(["query", "D7", "Q7", "--plan", "compiled"])
        assert args.algorithm == "compiled"
        # Every registered plan must appear in the query and explain
        # subparser help (the text is generated from the registry).
        subparsers = parser._subparsers._group_actions[0].choices
        for command in ("query", "explain"):
            help_text = subparsers[command].format_help()
            for name in available_plans():
                assert name in help_text, f"{name} missing from {command} --plan help"


class TestCommands:
    def test_schemas(self):
        code, output = run_cli("schemas")
        assert code == 0
        assert "xcbl" in output
        assert "1076" in output

    def test_show_schema(self):
        code, output = run_cli("show-schema", "cidx", "--max-lines", "10")
        assert code == 0
        assert output.splitlines()[0] == "Order"
        assert "more elements" in output

    def test_show_schema_unknown(self):
        code, output = run_cli("show-schema", "sap")
        assert code == 2
        assert "error:" in output

    def test_datasets(self):
        code, output = run_cli("datasets")
        assert code == 0
        assert "D7" in output and "apertum" in output

    def test_match(self):
        code, output = run_cli("match", "D1", "--limit", "5")
        assert code == 0
        assert "correspondences" in output
        assert output.count("~") == 5

    def test_match_unknown_dataset(self):
        code, output = run_cli("match", "D42")
        assert code == 2
        assert "error:" in output

    def test_mappings(self):
        code, output = run_cli("mappings", "D1", "--h", "5")
        assert code == 0
        assert "top-5 mappings" in output
        assert "o-ratio" in output

    def test_blocktree(self):
        code, output = run_cli("blocktree", "D1", "--num-mappings", "20", "--tau", "0.3")
        assert code == 0
        assert "num_blocks" in output
        assert "compression_ratio" in output

    def test_query_by_id(self):
        code, output = run_cli("query", "D7", "Q2", "--num-mappings", "50")
        assert code == 0
        assert "answers" in output
        assert "value distribution" in output

    def test_query_by_pattern_basic_algorithm(self):
        code, output = run_cli(
            "query", "D7", "Order/DeliverTo/Contact/EMail",
            "--num-mappings", "50", "--algorithm", "basic",
        )
        assert code == 0
        assert "using basic" in output

    def test_query_compiled_and_dashed_spellings_accepted(self):
        code, output = run_cli(
            "query", "D7", "Q2", "--num-mappings", "25", "--plan", "compiled",
        )
        assert code == 0
        assert "using compiled" in output
        code, output = run_cli(
            "query", "D7", "Q2", "--num-mappings", "25", "--algorithm", "block-tree",
        )
        assert code == 0
        assert "using block-tree" in output

    def test_query_unknown_plan_lists_registered_plans(self):
        code, output = run_cli("query", "D7", "Q2", "--algorithm", "quantum")
        assert code == 2
        assert "error:" in output
        for name in ("basic", "blocktree", "compiled"):
            assert name in output

    def test_query_top_k(self):
        code, output = run_cli("query", "D7", "Q2", "--num-mappings", "50", "--top-k", "5")
        assert code == 0
        assert "5 answers" in output

    def test_query_bad_pattern(self):
        code, output = run_cli("query", "D7", "Order/[")
        assert code == 2
        assert "error:" in output

    def test_query_json(self):
        code, output = run_cli("query", "D7", "Q2", "--num-mappings", "50", "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["dataset"] == "D7"
        assert payload["query"] == "Order/DeliverTo/Contact/EMail"
        result = payload["result"]
        assert result["num_answers"] == len(result["answers"]) == 50
        assert {"mapping_id", "probability", "matches"} <= set(result["answers"][0])
        # Probabilities travel in their exact hex encoding.
        assert float.fromhex(result["answers"][0]["probability"]) >= 0.0
        assert payload["value_distribution"]

    def test_blocktree_json(self):
        code, output = run_cli(
            "blocktree", "D1", "--num-mappings", "20", "--tau", "0.3", "--json"
        )
        assert code == 0
        payload = json.loads(output)
        assert "num_blocks" in payload and "compression_ratio" in payload

    def test_batch(self):
        code, output = run_cli(
            "batch", "D7", "Q2", "//EMail", "Q2",
            "--num-mappings", "50", "--workers", "4", "--repeat", "2",
        )
        assert code == 0
        assert "6 queries (3 distinct x 2 rounds)" in output
        assert output.count("answers") == 3
        assert "cache: hits=" in output

    def test_batch_json(self):
        code, output = run_cli(
            "batch", "D7", "Q2", "Q4", "--num-mappings", "50",
            "--top-k", "5", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["dataset"] == "D7"
        assert payload["total_ops"] == 2
        assert [item["result"]["num_answers"] for item in payload["results"]] == [5, 5]
        assert payload["service"]["completed"] == 2
        assert "result_cache" in payload["service"]

    def test_batch_no_cache(self):
        code, output = run_cli(
            "batch", "D7", "Q2", "--num-mappings", "50", "--repeat", "2",
            "--no-cache", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["service"]["result_cache"]["hits"] == 0

    def test_batch_bad_query(self):
        code, output = run_cli("batch", "D7", "Order/[", "--num-mappings", "50")
        assert code == 2
        assert "error:" in output

    def test_explain(self):
        code, output = run_cli("explain", "D7", "Q2", "--num-mappings", "50")
        assert code == 0
        assert "plan:" in output
        assert "compiled" in output
        assert "distinct rewrites" in output
        assert "timings:" in output
        assert "cache:" in output

    def test_explain_forced_plan_json(self):
        code, output = run_cli(
            "explain", "D7", "Q2", "--num-mappings", "50",
            "--algorithm", "basic", "--top-k", "5", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["plan"] == "basic"
        assert payload["reason"] == "forced by caller"
        assert payload["k"] == 5
        assert payload["num_selected"] == 5

    def test_explain_unknown_dataset(self):
        code, output = run_cli("explain", "D42", "Q2")
        assert code == 2
        assert "error:" in output


class TestCorpusCommand:
    def test_corpus_single_dataset(self):
        code, output = run_cli(
            "corpus", "D1", "//ContactName", "--shards", "3", "--num-mappings", "10"
        )
        assert code == 0
        assert "3 shards over 1 dataset(s)" in output
        assert "scatter-gather" in output
        assert "fan-out:" in output

    def test_corpus_json_reports_fanout_and_skips(self):
        code, output = run_cli(
            "corpus", "D1", "//ContactName", "//Name",
            "--shards", "2", "--num-mappings", "10", "--top-k", "3", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["datasets"] == ["D1"]
        assert payload["num_shards"] == 2
        assert len(payload["queries"]) == 2
        report = payload["queries"][0]
        for field in ("fan_out", "skipped_shards", "spine_rewrites",
                      "duplicate_matches", "shards", "answers"):
            assert field in report

    def test_corpus_multi_dataset(self):
        code, output = run_cli(
            "corpus", "D1,D2", "//ContactName",
            "--shards", "2", "--num-mappings", "8", "--top-k", "3", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["datasets"] == ["D1", "D2"]
        assert payload["num_shards"] == 4

    def test_corpus_unknown_dataset(self):
        code, output = run_cli("corpus", "D99", "//Name")
        assert code == 2
        assert "error:" in output

    def test_corpus_bad_query(self):
        code, output = run_cli("corpus", "D1", "Order/[", "--num-mappings", "8")
        assert code == 2
        assert "error:" in output


class TestDeltaCommand:
    def test_delta_reweight_reports_survivors(self):
        code, output = run_cli(
            "delta", "D1", "//ContactName", "--num-mappings", "12", "--touch", "3",
        )
        assert code == 0
        assert "epoch 1" in output
        assert "served without re-evaluation" in output
        assert "retained=" in output

    def test_delta_json_payload(self):
        code, output = run_cli(
            "delta", "D1", "//ContactName", "//Name",
            "--num-mappings", "12", "--touch", "2", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["dataset"] == "D1"
        assert payload["delta"]["delta_epoch"] == 1
        assert payload["delta"]["touched_mappings"] == 2
        assert len(payload["queries"]) == 2
        for state in payload["queries"]:
            assert state["cache"] in ("hit", "retained", "miss")
        assert "retained" in payload["result_cache"]

    def test_delta_structural_mode(self):
        code, output = run_cli(
            "delta", "D1", "//ContactName",
            "--num-mappings", "12", "--touch", "2", "--mode", "structural", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["delta"]["structural_mappings"] == 2
        assert payload["delta"]["posting_lists_touched"] >= 1

    def test_delta_unknown_dataset(self):
        code, output = run_cli("delta", "D99", "//Name")
        assert code == 2
        assert "error:" in output


class TestStoreCommand:
    def test_persist_then_stats_verify_gc(self, tmp_path):
        path = str(tmp_path / "store.db")
        code, output = run_cli(
            "store", "persist", "--path", path, "--dataset", "D1",
            "--num-mappings", "4", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["ref"].startswith("dataspace/D1")
        assert payload["artifacts"] >= 5
        assert payload["provenance"]["matching"]["source"] == "built"

        code, output = run_cli("store", "stats", "--path", path, "--json")
        assert code == 0
        stats = json.loads(output)
        assert stats["blocks"] >= 5
        assert stats["refs"] == 1

        code, output = run_cli("store", "verify", "--path", path)
        assert code == 0
        assert "0 errors" in output

        code, output = run_cli("store", "gc", "--path", path)
        assert code == 0
        assert "removed 0 unreachable blocks" in output

    def test_second_persist_reopens_from_store(self, tmp_path):
        path = str(tmp_path / "store.db")
        code, _ = run_cli(
            "store", "persist", "--path", path, "--dataset", "D1",
            "--num-mappings", "4", "--json",
        )
        assert code == 0
        code, output = run_cli(
            "store", "persist", "--path", path, "--dataset", "D1",
            "--num-mappings", "4", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["provenance"]["matching"]["source"] == "loaded"

    def test_gc_sweeps_unreferenced_blocks(self, tmp_path):
        from repro.store import SqliteBlockStore

        path = str(tmp_path / "store.db")
        code, _ = run_cli(
            "store", "persist", "--path", path, "--dataset", "D1",
            "--num-mappings", "4",
        )
        assert code == 0
        with SqliteBlockStore(path) as blocks:
            blocks.put_block(b"orphaned scratch block")
        code, output = run_cli("store", "gc", "--path", path, "--json")
        assert code == 0
        assert json.loads(output)["removed"] == 1

    def test_verify_flags_corruption(self, tmp_path):
        from repro.store import SqliteBlockStore

        path = str(tmp_path / "store.db")
        code, _ = run_cli(
            "store", "persist", "--path", path, "--dataset", "D1",
            "--num-mappings", "4",
        )
        assert code == 0
        with SqliteBlockStore(path) as blocks:
            victim = next(iter(blocks.iter_keys()))
            blocks._write(victim, b"rot")
        code, output = run_cli("store", "verify", "--path", path)
        assert code == 2
        assert "error" in output
