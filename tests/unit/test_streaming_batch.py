"""Regression pin: a singleton :class:`DeltaBatch` is bit-identical to
:func:`apply_mapping_delta`.

The session routes its single-delta path (``Dataspace.apply_delta``) through
the batch machinery internally, so this equivalence is what keeps that
refactor honest: the batch path must produce the same patched
:class:`~repro.mapping.Mapping` values, the same compiled bitset columns, the
same epoch/bookkeeping and the same cache-retention behaviour as the
single-delta path it replaced.
"""

from __future__ import annotations

import pytest

from repro.engine import Dataspace
from repro.engine.delta import MappingDelta, apply_mapping_delta
from repro.engine.streaming import DeltaBatch, DeltaBatchReport, apply_delta_batch
from repro.exceptions import MappingError


def _reweight_delta(mapping_set) -> MappingDelta:
    """A mass-preserving probability rotation over mappings 0 and 1."""
    p0, p1 = mapping_set[0].probability, mapping_set[1].probability
    return MappingDelta.build(reweight={0: p1, 1: p0})


def _structural_delta(mapping_set) -> MappingDelta:
    """Remove mapping 2's lexicographically largest correspondence."""
    pairs = sorted(mapping_set[2].correspondences)
    return MappingDelta.build(remove=[(2, pairs[-1])])


def _mixed_delta(mapping_set) -> MappingDelta:
    """One delta exercising reweight and structural edits together."""
    p0, p1 = mapping_set[0].probability, mapping_set[1].probability
    pairs = sorted(mapping_set[3].correspondences)
    return MappingDelta.build(
        reweight={0: p0 * 0.5, 1: p1 + p0 * 0.5}, remove=[(3, pairs[-1])]
    )


def _compiled_state(compiled) -> tuple:
    """Every observable column of a compiled artifact, as comparable values."""
    return (
        compiled.num_mappings,
        compiled.all_mask,
        compiled.probabilities,
        dict(compiled._pair_masks),
        dict(compiled._covered_masks),
        dict(compiled._target_sources),
    )


@pytest.fixture(scope="module")
def base_session():
    """A compiled D7 session the equivalence cases derive fresh sets from."""
    session = Dataspace.from_dataset("D7", h=40)
    session.compiled  # force the compiled artifact
    return session


@pytest.mark.parametrize(
    "make_delta", [_reweight_delta, _structural_delta, _mixed_delta]
)
def test_singleton_batch_matches_apply_mapping_delta(base_session, make_delta):
    """Function-level pin: same mappings, same compiled columns, same masks."""
    mapping_set = base_session.snapshot(need_tree=False).mapping_set
    delta = make_delta(mapping_set)

    single_set, single_effect = apply_mapping_delta(mapping_set, delta)
    batch_set, batch_effect = apply_delta_batch(mapping_set, DeltaBatch.of(delta))

    assert list(batch_set) == list(single_set)
    assert _compiled_state(batch_set.compile()) == _compiled_state(
        single_set.compile()
    )
    assert batch_effect.num_deltas == 1
    assert batch_effect.dirty_mask == single_effect.dirty_mask
    assert batch_effect.structural_mask == single_effect.structural_mask
    assert batch_effect.probability_mask == single_effect.probability_mask
    assert batch_effect.dirty_target_mask == single_effect.dirty_target_mask
    assert batch_effect.dirty_targets == single_effect.dirty_targets
    assert batch_effect.posting_lists_touched == single_effect.posting_lists_touched
    assert batch_effect.compiled_incrementally is True


def test_singleton_batch_matches_apply_delta_session_level():
    """Session-level pin: epoch, report fields and answers line up exactly."""
    single = Dataspace.from_dataset("D7", h=40)
    batched = Dataspace.from_dataset("D7", h=40)
    for session in (single, batched):
        session.compiled
        session.execute("Q1", k=5)

    delta = _mixed_delta(single.snapshot(need_tree=False).mapping_set)
    single_report = single.apply_delta(delta)
    batch_report = batched.apply_delta_batch(DeltaBatch.of(delta))

    assert isinstance(batch_report, DeltaBatchReport)
    assert batch_report.num_deltas == 1
    single_fields = single_report.to_dict()
    batch_fields = batch_report.to_dict()
    single_fields.pop("elapsed_ms")
    batch_fields.pop("elapsed_ms")
    batch_fields.pop("num_deltas")
    assert batch_fields == single_fields
    assert single.delta_epoch == batched.delta_epoch

    single_answers = [
        (a.mapping_id, a.probability.hex()) for a in single.execute("Q1", k=5)
    ]
    batch_answers = [
        (a.mapping_id, a.probability.hex()) for a in batched.execute("Q1", k=5)
    ]
    assert batch_answers == single_answers


def test_multi_delta_batch_single_epoch_bump():
    """N deltas commit as one epoch and match applying them one by one."""
    stepped = Dataspace.from_dataset("D7", h=40)
    batched = Dataspace.from_dataset("D7", h=40)
    mapping_set = stepped.snapshot(need_tree=False).mapping_set
    deltas = [
        _reweight_delta(mapping_set),
        _structural_delta(mapping_set),
        _mixed_delta(mapping_set),
    ]

    for delta in deltas:
        stepped.apply_delta(delta)
    report = batched.apply_delta_batch(deltas)

    assert report.num_deltas == 3
    assert batched.delta_epoch == 1
    assert stepped.delta_epoch == 3
    stepped_rows = [
        (a.mapping_id, a.probability.hex()) for a in stepped.execute("Q1")
    ]
    batched_rows = [
        (a.mapping_id, a.probability.hex()) for a in batched.execute("Q1")
    ]
    assert batched_rows == stepped_rows


def test_batch_reverting_edit_touches_no_posting_list():
    """An add a later delta removes contributes no net structural dirt."""
    session = Dataspace.from_dataset("D7", h=40)
    session.compiled
    mapping_set = session.snapshot(need_tree=False).mapping_set
    pair = sorted(mapping_set[2].correspondences)[-1]
    batch = DeltaBatch.of(
        MappingDelta.build(remove=[(2, pair)]),
        MappingDelta.build(add=[(2, pair)]),
    )
    patched, effect = apply_delta_batch(mapping_set, batch)
    assert effect.num_deltas == 2
    # The touched/structural masks stay conservative (the mapping *was*
    # edited mid-batch), but the net dirt — what cache retention and
    # subscription classification consume — is empty: no posting list was
    # touched, no target or source element is dirty.
    assert effect.structural_mask == 1 << 2
    assert effect.posting_lists_touched == 0
    assert effect.dirty_target_mask == 0
    assert effect.dirty_targets == frozenset()
    assert effect.dirty_source_mask == 0
    assert list(patched) == list(mapping_set)


def test_batch_payload_roundtrip_and_validation():
    session = Dataspace.from_dataset("D7", h=40)
    mapping_set = session.snapshot(need_tree=False).mapping_set
    batch = DeltaBatch.of(_reweight_delta(mapping_set), _structural_delta(mapping_set))
    rebuilt = DeltaBatch.from_payload(batch.to_payload())
    assert rebuilt == batch
    assert len(rebuilt) == 2 and not rebuilt.is_empty()
    assert rebuilt.touched_ids() == frozenset({0, 1, 2})

    with pytest.raises(MappingError):
        apply_delta_batch(mapping_set, DeltaBatch.of())
    with pytest.raises(MappingError):
        session.apply_delta_batch([])


def test_batch_report_is_a_delta_report():
    """Report compatibility: consumers of DeltaReport keep working."""
    session = Dataspace.from_dataset("D7", h=40)
    mapping_set = session.snapshot(need_tree=False).mapping_set
    report = session.apply_delta_batch(DeltaBatch.of(_reweight_delta(mapping_set)))
    from repro.engine.delta import DeltaReport

    assert isinstance(report, DeltaReport)
    assert "coalesced:  1 deltas" in report.format()
    assert report.to_dict()["num_deltas"] == 1


def test_cache_retention_matches_across_paths():
    """Retention after a singleton batch mirrors the single-delta path."""
    single = Dataspace.from_dataset("D7", h=40)
    batched = Dataspace.from_dataset("D7", h=40)
    for session in (single, batched):
        session.execute("Q1", k=5)
        session.execute("Q7", k=5)

    # A reweight far outside Q1/Q7's relevant mappings retains both entries.
    mapping_set = single.snapshot(need_tree=False).mapping_set
    delta = _reweight_delta(mapping_set)
    single.apply_delta(delta)
    batched.apply_delta_batch(DeltaBatch.of(delta))
    for query in ("Q1", "Q7"):
        single.execute(query, k=5)
        batched.execute(query, k=5)
    assert (
        batched.result_cache.stats().retained
        == single.result_cache.stats().retained
    )
