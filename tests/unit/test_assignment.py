"""Tests for the bipartite graph and the assignment solvers."""

from __future__ import annotations

import pytest

from repro.exceptions import AssignmentError
from repro.mapping.assignment import (
    available_backends,
    hungarian_min_cost,
    solve_max_weight_matching,
)
from repro.mapping.bipartite import BipartiteGraph
from repro.matching.matching import SchemaMatching
from repro.schema.parser import parse_schema


@pytest.fixture()
def small_graph():
    # Figure 7-style bipartite: four source elements, three target elements.
    weights = {
        (0, 0): 0.9,
        (0, 1): 0.4,
        (1, 0): 0.5,
        (1, 1): 0.8,
        (2, 2): 0.7,
        (3, 2): 0.6,
    }
    return BipartiteGraph([0, 1, 2, 3], [0, 1, 2], weights)


class TestBipartiteGraph:
    def test_size_and_edges(self, small_graph):
        assert small_graph.size == 7
        assert small_graph.num_edges == 6
        assert small_graph.max_weight() == 0.9

    def test_edge_nodes_validated(self):
        with pytest.raises(AssignmentError):
            BipartiteGraph([0], [0], {(5, 0): 0.5})

    def test_negative_weight_rejected(self):
        with pytest.raises(AssignmentError):
            BipartiteGraph([0], [0], {(0, 0): -0.5})

    def test_from_matching_full_and_reduced(self):
        source = parse_schema("S\n  a\n  b\n  c\n", name="src")
        target = parse_schema("T\n  x\n", name="tgt")
        matching = SchemaMatching(source, target)
        matching.add_pair(1, 1, 0.5)
        full = BipartiteGraph.from_matching(matching, include_unmatched_elements=True)
        reduced = BipartiteGraph.from_matching(matching, include_unmatched_elements=False)
        assert full.size == len(source) + len(target)
        assert reduced.size == 2

    def test_connected_components(self):
        weights = {(0, 0): 1.0, (1, 0): 0.5, (2, 1): 0.7, (3, 2): 0.3}
        graph = BipartiteGraph([0, 1, 2, 3], [0, 1, 2], weights)
        components = graph.connected_components()
        assert len(components) == 3
        assert sum(c.num_edges for c in components) == graph.num_edges
        sizes = sorted(c.size for c in components)
        assert sizes == [2, 2, 3]

    def test_components_are_node_disjoint(self, small_graph):
        components = small_graph.connected_components()
        seen_sources: set[int] = set()
        for component in components:
            assert not (set(component.source_ids) & seen_sources)
            seen_sources.update(component.source_ids)

    def test_restrict(self, small_graph):
        sub = small_graph.restrict([(0, 0), (1, 1)])
        assert sub.num_edges == 2
        assert sub.source_ids == [0, 1]
        with pytest.raises(AssignmentError):
            small_graph.restrict([(9, 9)])


class TestHungarian:
    def test_empty(self):
        assert hungarian_min_cost([]) == []

    def test_identity_optimal(self):
        cost = [
            [0.0, 5.0, 5.0],
            [5.0, 0.0, 5.0],
            [5.0, 5.0, 0.0],
        ]
        assert sorted(hungarian_min_cost(cost)) == [(0, 0), (1, 1), (2, 2)]

    def test_classic_example(self):
        cost = [
            [4.0, 1.0, 3.0],
            [2.0, 0.0, 5.0],
            [3.0, 2.0, 2.0],
        ]
        assignment = hungarian_min_cost(cost)
        total = sum(cost[i][j] for i, j in assignment)
        assert total == pytest.approx(5.0)

    def test_rectangular_rows_less_than_cols(self):
        cost = [
            [1.0, 9.0, 9.0, 0.5],
            [9.0, 1.0, 9.0, 9.0],
        ]
        assignment = hungarian_min_cost(cost)
        assert len(assignment) == 2
        total = sum(cost[i][j] for i, j in assignment)
        assert total == pytest.approx(1.5)

    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(AssignmentError):
            hungarian_min_cost([[1.0], [2.0]])

    def test_ragged_rejected(self):
        with pytest.raises(AssignmentError):
            hungarian_min_cost([[1.0, 2.0], [1.0]])


class TestSolveMaxWeightMatching:
    def test_unconstrained_optimum(self, small_graph):
        score, edges = solve_max_weight_matching(small_graph, backend="python")
        assert score == pytest.approx(0.9 + 0.8 + 0.7)
        assert edges == {(0, 0), (1, 1), (2, 2)}

    def test_backends_agree(self, small_graph):
        python_score, python_edges = solve_max_weight_matching(small_graph, backend="python")
        if "scipy" in available_backends():
            scipy_score, scipy_edges = solve_max_weight_matching(small_graph, backend="scipy")
            assert scipy_score == pytest.approx(python_score)
            assert scipy_edges == python_edges

    def test_forbidden_edge_respected(self, small_graph):
        score, edges = solve_max_weight_matching(
            small_graph, forbidden=[(2, 2)], backend="python"
        )
        assert (2, 2) not in edges
        assert score == pytest.approx(0.9 + 0.8 + 0.6)

    def test_forced_edge_respected(self, small_graph):
        score, edges = solve_max_weight_matching(small_graph, forced=[(1, 0)], backend="python")
        assert (1, 0) in edges
        # Forcing (1, 0) excludes (0, 0) and (1, 1); best completion uses (0, 1) and (2, 2).
        assert score == pytest.approx(0.5 + 0.4 + 0.7)

    def test_forced_and_forbidden_conflict(self, small_graph):
        with pytest.raises(AssignmentError):
            solve_max_weight_matching(small_graph, forced=[(0, 0)], forbidden=[(0, 0)])

    def test_forced_must_be_edge(self, small_graph):
        with pytest.raises(AssignmentError):
            solve_max_weight_matching(small_graph, forced=[(0, 2)])

    def test_forced_must_be_disjoint(self, small_graph):
        with pytest.raises(AssignmentError):
            solve_max_weight_matching(small_graph, forced=[(0, 0), (0, 1)])

    def test_everything_forbidden_gives_empty(self, small_graph):
        score, edges = solve_max_weight_matching(
            small_graph, forbidden=list(small_graph.weights), backend="python"
        )
        assert score == 0.0
        assert edges == frozenset()

    def test_unknown_backend_rejected(self, small_graph):
        with pytest.raises(AssignmentError):
            solve_max_weight_matching(small_graph, backend="gpu")

    def test_partial_matching_better_unmatched(self):
        # A single source element with two low-weight options and one target
        # element with a high-weight option elsewhere: the solver must not be
        # forced into using low-value edges (they are still positive, so it
        # takes them, but unmatched elements are simply absent).
        graph = BipartiteGraph([0, 1], [0], {(0, 0): 0.9, (1, 0): 0.2})
        score, edges = solve_max_weight_matching(graph, backend="python")
        assert edges == {(0, 0)}
        assert score == pytest.approx(0.9)

    def test_edgeless_graph(self):
        graph = BipartiteGraph([0, 1], [0, 1], {})
        score, edges = solve_max_weight_matching(graph, backend="python")
        assert score == 0.0
        assert edges == frozenset()
