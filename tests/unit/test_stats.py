"""Tests for the evaluation metrics in :mod:`repro.stats`."""

from __future__ import annotations

import pytest

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.stats.metrics import (
    block_support_distribution,
    cblock_size_distribution,
    compression_ratio,
    size_distribution_histogram,
)
from repro.stats.overlap import o_ratio, pairwise_o_ratios


class TestOverlap:
    def test_o_ratio_matches_mapping_set(self, figure_mappings):
        assert o_ratio(figure_mappings) == pytest.approx(figure_mappings.o_ratio())

    def test_o_ratio_in_unit_interval(self, figure_mappings):
        assert 0.0 <= o_ratio(figure_mappings) <= 1.0

    def test_pairwise_matrix_shape_and_diagonal(self, figure_mappings):
        matrix = pairwise_o_ratios(figure_mappings)
        size = len(figure_mappings)
        assert len(matrix) == size
        assert all(len(row) == size for row in matrix)
        assert all(matrix[i][i] == 1.0 for i in range(size))

    def test_pairwise_matrix_symmetric(self, figure_mappings):
        matrix = pairwise_o_ratios(figure_mappings)
        size = len(figure_mappings)
        for i in range(size):
            for j in range(size):
                assert matrix[i][j] == pytest.approx(matrix[j][i])

    def test_pairwise_mean_equals_o_ratio(self, figure_mappings):
        matrix = pairwise_o_ratios(figure_mappings)
        size = len(figure_mappings)
        values = [matrix[i][j] for i in range(size) for j in range(i + 1, size)]
        assert sum(values) / len(values) == pytest.approx(o_ratio(figure_mappings))


class TestBlockMetrics:
    def test_compression_ratio_wrapper(self, figure_block_tree):
        assert compression_ratio(figure_block_tree) == pytest.approx(
            figure_block_tree.compression_ratio()
        )

    def test_size_distribution_fractions(self, figure_block_tree, target_schema):
        fractions = cblock_size_distribution(figure_block_tree)
        assert len(fractions) == figure_block_tree.num_blocks
        assert all(0.0 < fraction <= 1.0 for fraction in fractions)
        # The largest Figure 5 block covers 2 of the 5 target elements.
        assert max(fractions) == pytest.approx(2 / len(target_schema))

    def test_support_distribution(self, figure_block_tree, figure_mappings):
        supports = block_support_distribution(figure_block_tree)
        assert len(supports) == figure_block_tree.num_blocks
        minimum = figure_block_tree.config.tau * len(figure_mappings)
        assert all(support >= minimum for support in supports)

    def test_histogram_totals(self, figure_block_tree):
        histogram = size_distribution_histogram(figure_block_tree)
        assert sum(histogram.values()) == figure_block_tree.num_blocks
        assert set(histogram) == {1, 2}

    def test_higher_tau_not_larger_distribution(self, figure_mappings):
        low = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.2))
        high = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.9))
        assert len(cblock_size_distribution(high)) <= len(cblock_size_distribution(low))

    def test_d7_distribution_has_large_blocks(self, d7_block_tree):
        histogram = size_distribution_histogram(d7_block_tree)
        assert any(size > 1 for size in histogram)
