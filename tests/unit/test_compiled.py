"""Tests for the compiled bitset core (repro.engine.compiled)."""

from __future__ import annotations

import pytest

from repro.engine import CompiledMappingSet, Dataspace, compile_mapping_set, plan_for
from repro.mapping.mapping_set import iter_mapping_ids, mapping_mask
from repro.query.parser import parse_twig
from repro.query.resolve import resolve_query

ICN_QUERY = "//INVOICE_PARTY//CONTACT_NAME"


def answers_of(result):
    return {(answer.mapping_id, answer.matches, answer.probability) for answer in result}


class TestMaskPrimitives:
    def test_mask_round_trip(self):
        ids = [0, 3, 7, 40, 129]
        mask = mapping_mask(ids)
        assert list(iter_mapping_ids(mask)) == ids

    def test_empty_mask(self):
        assert mapping_mask([]) == 0
        assert list(iter_mapping_ids(0)) == []

    def test_mask_is_idempotent_on_duplicates(self):
        assert mapping_mask([2, 2, 2]) == mapping_mask([2])


class TestCompiledMappingSet:
    def test_compile_is_memoized(self, figure_mappings):
        compiled = figure_mappings.compile()
        assert isinstance(compiled, CompiledMappingSet)
        assert figure_mappings.compile() is compiled
        assert compile_mapping_set(figure_mappings) is compiled
        assert figure_mappings.is_compiled

    def test_probability_column_matches_mappings(self, figure_mappings):
        compiled = figure_mappings.compile()
        assert compiled.num_mappings == len(figure_mappings)
        assert compiled.all_mask == (1 << len(figure_mappings)) - 1
        for mapping in figure_mappings:
            assert compiled.probabilities[mapping.mapping_id] == mapping.probability

    def test_pair_masks_match_brute_force(self, figure_mappings):
        compiled = figure_mappings.compile()
        keys = {key for mapping in figure_mappings for key in mapping.correspondences}
        for key in keys:
            brute = {
                m.mapping_id for m in figure_mappings if key in m.correspondences
            }
            assert set(iter_mapping_ids(compiled.pair_mask(key))) == brute
            assert figure_mappings.mappings_with_pair(key) == brute
        assert compiled.pair_mask((999, 999)) == 0

    def test_covers_mask_matches_covers_targets(self, figure_mappings):
        compiled = figure_mappings.compile()
        target_ids = {t for m in figure_mappings for _, t in m.correspondences}
        for target_id in target_ids:
            brute = {
                m.mapping_id
                for m in figure_mappings
                if m.covers_targets([target_id])
            }
            assert set(iter_mapping_ids(compiled.covers_mask([target_id]))) == brute
            for mapping in figure_mappings:
                assert compiled.covers_targets(
                    mapping.mapping_id, [target_id]
                ) == mapping.covers_targets([target_id])

    def test_empty_target_set_covers_everything(self, figure_mappings):
        compiled = figure_mappings.compile()
        assert compiled.covers_mask([]) == compiled.all_mask
        assert figure_mappings.relevant_mappings([]) == figure_mappings.mappings

    def test_unknown_target_covers_nothing(self, figure_mappings):
        compiled = figure_mappings.compile()
        assert compiled.covers_mask([987654]) == 0
        assert figure_mappings.relevant_mappings([987654]) == []

    def test_relevant_mappings_identical_to_scan(self, figure_mappings):
        query = parse_twig(ICN_QUERY)
        embeddings = resolve_query(query, figure_mappings.matching.target)
        via_bitsets = figure_mappings.compile().relevant_mappings(embeddings)
        required_sets = [set(e.values()) for e in embeddings]
        via_scan = [
            m
            for m in figure_mappings
            if any(m.covers_targets(required) for required in required_sets)
        ]
        assert via_bitsets == via_scan

    def test_rewrite_groups_partition_the_candidates(self, figure_mappings):
        compiled = figure_mappings.compile()
        query = parse_twig(ICN_QUERY)
        embeddings = resolve_query(query, figure_mappings.matching.target)
        for embedding in embeddings:
            required = set(embedding.values())
            candidates = compiled.covers_mask(required)
            groups = compiled.rewrite_groups(required)
            union = 0
            for group_mask, assignment in groups:
                assert group_mask  # no empty groups
                assert union & group_mask == 0  # pairwise disjoint
                union |= group_mask
                assert set(assignment) == required
                # Every member really maps each target to the group's source.
                for mapping_id in iter_mapping_ids(group_mask):
                    mapping = figure_mappings[mapping_id]
                    for target_id, source_id in assignment.items():
                        assert mapping.source_for_target(target_id) == source_id
            assert union == candidates

    def test_rewrite_groups_respect_restriction_mask(self, figure_mappings):
        compiled = figure_mappings.compile()
        query = parse_twig(ICN_QUERY)
        embeddings = resolve_query(query, figure_mappings.matching.target)
        required = set(embeddings[0].values())
        restricted = mapping_mask([0, 2])
        union = 0
        for group_mask, _ in compiled.rewrite_groups(required, restricted):
            union |= group_mask
        assert union == compiled.covers_mask(required) & restricted

    def test_source_partitions_split_the_coverage_mask(self, figure_mappings):
        compiled = figure_mappings.compile()
        target_ids = {t for m in figure_mappings for _, t in m.correspondences}
        for target_id in target_ids:
            partitions = compiled.source_partitions(target_id)
            assert [s for s, _ in partitions] == sorted(s for s, _ in partitions)
            union = 0
            for _, source_mask in partitions:
                assert union & source_mask == 0  # a mapping maps t to one source
                union |= source_mask
            assert union == compiled.covered_mask(target_id)
        assert compiled.source_partitions(987654) == ()

    def test_stats_shape(self, figure_mappings):
        stats = figure_mappings.compile().stats()
        assert stats["num_mappings"] == len(figure_mappings)
        assert stats["num_posting_lists"] > 0
        assert stats["bitset_bytes"] > 0
        assert stats["max_posting_popcount"] <= len(figure_mappings)

    def test_rewrite_stats_counts_sharing(self, figure_mappings):
        compiled = figure_mappings.compile()
        query = parse_twig(ICN_QUERY)
        embeddings = resolve_query(query, figure_mappings.matching.target)
        stats = compiled.rewrite_stats(embeddings, figure_mappings.mappings)
        assert stats["num_selected"] == len(figure_mappings)
        assert stats["num_distinct_rewrites"] >= 1
        assert stats["num_rewrite_groups"] >= stats["num_distinct_rewrites"]
        assert stats["evaluations_saved"] >= 0


class TestCompiledPlan:
    def test_compiled_plan_equals_basic(self, figure_mappings, figure_document):
        query = parse_twig(ICN_QUERY)
        basic = plan_for("basic").run(query, figure_mappings, figure_document)
        compiled = plan_for("compiled").run(query, figure_mappings, figure_document)
        assert answers_of(basic) == answers_of(compiled)

    def test_compiled_plan_topk_equals_basic(self, figure_mappings, figure_document):
        query = parse_twig(ICN_QUERY)
        basic = plan_for("basic").run(query, figure_mappings, figure_document, k=2)
        compiled = plan_for("compiled").run(query, figure_mappings, figure_document, k=2)
        assert answers_of(basic) == answers_of(compiled)

    def test_topk_free_function_runs_compiled(self, figure_mappings, figure_document):
        from repro.query.topk import evaluate_topk_ptq

        result = evaluate_topk_ptq(
            parse_twig(ICN_QUERY), figure_mappings, figure_document, k=2
        )
        assert len(result) == 2
        assert figure_mappings.is_compiled  # ran on the compiled artifacts

    def test_invalid_k_rejected(self, figure_mappings, figure_document):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            plan_for("compiled").run(
                parse_twig(ICN_QUERY), figure_mappings, figure_document, k=0
            )


class TestEngineIntegration:
    def test_dataspace_compiled_property_tracks_generation(
        self, figure_mappings, figure_document
    ):
        ds = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        first = ds.compiled
        assert first is figure_mappings.compile()
        assert ds.describe()["compiled_built"]
        # A pinned mapping set survives invalidate(); its compiled view with it.
        ds.invalidate()
        assert ds.compiled is first

    def test_reconfigure_retires_compiled_artifact(self, source_schema, target_schema):
        ds = Dataspace(source_schema, target_schema, h=5, seed=1)
        first = ds.compiled
        ds.configure(h=3)
        second = ds.compiled
        assert second is not first
        assert second.num_mappings == len(ds.mapping_set)

    def test_block_mapping_mask_matches_ids(self, figure_block_tree):
        for block in figure_block_tree.all_blocks():
            assert set(iter_mapping_ids(block.mapping_mask)) == set(block.mapping_ids)
