"""Unit tests for the persistent artifact store.

Covers the block-store substrate (memory, sqlite, overlay), the
``ArtifactStore`` wrapper, and — most importantly — the corruption matrix
from ISSUE 6: a truncated blob, a wrong checksum, a stale signature, and
concurrent writers on one sqlite store must each degrade to a clean rebuild
with no exception escaping to the query path.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import Dataspace
from repro.exceptions import StoreError
from repro.store import (
    ArtifactStore,
    MemoryBlockStore,
    OverlayBlockStore,
    SqliteBlockStore,
)
from repro.store.blocks import block_key


def answer_set(result):
    return {(a.mapping_id, a.matches, a.probability) for a in result}


@pytest.fixture(params=["memory", "sqlite"])
def blocks(request, tmp_path):
    """One of the two concrete block stores, freshly created."""
    if request.param == "memory":
        store = MemoryBlockStore()
    else:
        store = SqliteBlockStore(str(tmp_path / "blocks.db"))
    yield store
    store.close()


@pytest.fixture()
def figure_session(figure_mappings, figure_document):
    return Dataspace.from_mapping_set(figure_mappings, document=figure_document)


class TestBlockStores:
    def test_put_get_roundtrip_is_content_addressed(self, blocks):
        key = blocks.put_block(b"payload")
        assert key == block_key(b"payload")
        assert blocks.get_block(key) == b"payload"
        assert blocks.has_block(key)
        assert len(blocks) == 1
        assert blocks.total_bytes() == len(b"payload")

    def test_put_is_idempotent(self, blocks):
        first = blocks.put_block(b"same bytes")
        second = blocks.put_block(b"same bytes")
        assert first == second
        assert len(blocks) == 1

    def test_missing_block_reads_as_none(self, blocks):
        assert blocks.get_block(block_key(b"never stored")) is None
        assert not blocks.has_block(block_key(b"never stored"))

    def test_truncated_blob_fails_checksum(self, blocks):
        key = blocks.put_block(b"a block that will lose its tail")
        blocks._write(key, b"a block")  # simulate a torn write
        with pytest.raises(StoreError, match="checksum"):
            blocks.get_block(key)

    def test_tampered_blob_fails_checksum(self, blocks):
        key = blocks.put_block(b"original content")
        blocks._write(key, b"replaced content")
        with pytest.raises(StoreError, match="checksum"):
            blocks.get_block(key)

    def test_delete_block(self, blocks):
        key = blocks.put_block(b"ephemeral")
        assert blocks.delete_block(key)
        assert not blocks.delete_block(key)
        assert blocks.get_block(key) is None

    def test_refs_namespace(self, blocks):
        key = blocks.put_block(b"manifest")
        blocks.set_ref("sessions/a", key)
        assert blocks.get_ref("sessions/a") == key
        assert blocks.refs() == {"sessions/a": key}
        other = blocks.put_block(b"manifest v2")
        blocks.set_ref("sessions/a", other)  # overwrite
        assert blocks.get_ref("sessions/a") == other
        assert blocks.delete_ref("sessions/a")
        assert not blocks.delete_ref("sessions/a")
        assert blocks.get_ref("sessions/a") is None

    def test_iter_keys_enumerates_everything(self, blocks):
        keys = {blocks.put_block(bytes([i]) * 4) for i in range(5)}
        assert set(blocks.iter_keys()) == keys


class TestSqliteBlockStore:
    def test_blocks_survive_reopen(self, tmp_path):
        path = str(tmp_path / "persist.db")
        with SqliteBlockStore(path) as store:
            key = store.put_block(b"durable bytes")
            store.set_ref("root", key)
        with SqliteBlockStore(path) as store:
            assert store.get_block(key) == b"durable bytes"
            assert store.get_ref("root") == key

    def test_concurrent_writers_on_one_store(self, tmp_path):
        path = str(tmp_path / "shared.db")
        errors: list[Exception] = []

        def writer(worker: int) -> None:
            try:
                with SqliteBlockStore(path) as store:
                    for i in range(25):
                        # Half the blocks collide across workers on purpose:
                        # idempotent content-addressed writes make that safe.
                        key = store.put_block(b"shared %d" % (i % 5))
                        store.put_block(b"worker %d block %d" % (worker, i))
                        store.set_ref("latest", key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with SqliteBlockStore(path) as store:
            assert len(store) == 5 + 4 * 25
            for key in store.iter_keys():
                assert store.get_block(key) is not None  # all checksums hold
            assert store.get_ref("latest") is not None


class TestOverlayBlockStore:
    def test_lower_is_required(self):
        with pytest.raises(StoreError):
            OverlayBlockStore()

    def test_reads_fall_through_writes_stay_upper(self):
        lower = MemoryBlockStore()
        base_key = lower.put_block(b"base block")
        overlay = OverlayBlockStore(lower=lower)
        assert overlay.get_block(base_key) == b"base block"
        staged_key = overlay.put_block(b"staged block")
        assert overlay.get_block(staged_key) == b"staged block"
        assert lower.get_block(staged_key) is None
        assert overlay.staged_blocks() == 1

    def test_refs_merge_with_staged_shadowing_base(self):
        lower = MemoryBlockStore()
        lower.set_ref("shared", lower.put_block(b"old"))
        lower.set_ref("base-only", lower.put_block(b"keep"))
        overlay = OverlayBlockStore(lower=lower)
        staged = overlay.put_block(b"new")
        overlay.set_ref("shared", staged)
        assert overlay.get_ref("shared") == staged
        assert overlay.get_ref("base-only") == lower.get_ref("base-only")
        assert set(overlay.refs()) == {"shared", "base-only"}
        assert lower.get_ref("shared") == block_key(b"old")  # base untouched

    def test_commit_flushes_and_clears(self):
        lower = MemoryBlockStore()
        overlay = OverlayBlockStore(lower=lower)
        key = overlay.put_block(b"to flush")
        overlay.set_ref("head", key)
        flushed = overlay.commit()
        assert flushed == 1
        assert overlay.staged_blocks() == 0
        assert lower.get_block(key) == b"to flush"
        assert lower.get_ref("head") == key
        # a second commit has nothing left to do
        assert overlay.commit() == 0

    def test_discard_drops_staged_state(self):
        lower = MemoryBlockStore()
        overlay = OverlayBlockStore(lower=lower)
        key = overlay.put_block(b"abandoned")
        overlay.set_ref("head", key)
        dropped = overlay.discard()
        assert dropped >= 1
        assert overlay.staged_blocks() == 0
        assert lower.get_block(key) is None
        assert lower.get_ref("head") is None


class TestArtifactStore:
    def test_wrap_is_idempotent(self):
        blocks = MemoryBlockStore()
        store = ArtifactStore.wrap(blocks)
        assert ArtifactStore.wrap(store) is store
        with pytest.raises(StoreError):
            ArtifactStore.wrap("not a store")

    def test_missing_payload_raises(self):
        store = ArtifactStore(MemoryBlockStore())
        with pytest.raises(StoreError):
            store.get_payload(block_key(b"absent"))

    def test_save_load_session_counts_hits(self, figure_session):
        store = ArtifactStore(MemoryBlockStore())
        report = figure_session.persist(store)
        assert report["artifacts"] >= 5
        bundle = store.load_session(report["ref"])
        assert bundle is not None
        assert bundle.signature == {
            "generation": 0,
            "delta_epoch": 0,
            "document_version": 0,
        }
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["writes"] >= report["artifacts"]

    def test_absent_ref_is_a_miss_not_an_error(self):
        store = ArtifactStore(MemoryBlockStore())
        assert store.load_session("dataspace/nowhere") is None
        assert store.stats()["misses"] == 1

    def test_stale_signature_is_a_miss(self, figure_session):
        store = ArtifactStore(MemoryBlockStore())
        ref = figure_session.persist(store)["ref"]
        config = store.load_session(ref).config
        stale = dict(config, tau=config["tau"] + 0.25)
        assert store.load_session(ref, expect=stale) is None
        assert store.stats()["misses"] == 1

    def test_corrupt_artifact_raises_store_error(self, figure_session):
        store = ArtifactStore(MemoryBlockStore())
        ref = figure_session.persist(store)["ref"]
        manifest_key = store.blocks.get_ref(ref)
        payload = store.blocks.get_block(manifest_key)
        store.blocks._write(manifest_key, payload[: len(payload) // 2])
        with pytest.raises(StoreError):
            store.load_session(ref)
        assert store.stats()["misses"] == 1

    def test_verify_reports_corruption_without_raising(self, figure_session):
        store = ArtifactStore(MemoryBlockStore())
        ref = figure_session.persist(store)["ref"]
        assert store.verify()["errors"] == 0
        victim = next(iter(store.blocks.iter_keys()))
        store.blocks._write(victim, b"rot")
        report = store.verify()
        assert report["errors"] >= 1
        assert any("error" in status for status in report["refs"].values())

    def test_gc_keeps_live_removes_unreachable(self, figure_session):
        store = ArtifactStore(MemoryBlockStore())
        figure_session.persist(store)
        assert store.gc()["removed"] == 0
        orphan = store.blocks.put_block(b"unreferenced scratch block")
        report = store.gc()
        assert report["removed"] == 1
        assert not store.blocks.has_block(orphan)

    def test_gc_after_ref_deletion_sweeps_the_session(self, figure_session):
        store = ArtifactStore(MemoryBlockStore())
        ref = figure_session.persist(store)["ref"]
        store.blocks.delete_ref(ref)
        report = store.gc()
        assert report["removed"] >= 5
        assert len(store.blocks) == 0


class TestCorruptionFallsBackToRebuild:
    """Every store failure mode must yield a cold build, never an exception."""

    H = 4
    D1_QUERY = "//contactName"

    def populated(self, tmp_path) -> tuple[str, str, set]:
        path = str(tmp_path / "datasets.db")
        with SqliteBlockStore(path) as blocks:
            session = Dataspace.from_dataset("D1", h=self.H, store=ArtifactStore(blocks))
            report = session.persist()
            baseline = answer_set(session.execute(self.D1_QUERY, use_cache=False))
        return path, report["ref"], baseline

    def reopen(self, path: str):
        blocks = SqliteBlockStore(path)
        store = ArtifactStore(blocks)
        session = Dataspace.from_dataset("D1", h=self.H, store=store)
        return session, store

    def test_warm_reopen_loads_instead_of_building(self, tmp_path):
        path, _, baseline = self.populated(tmp_path)
        session, store = self.reopen(path)
        provenance = session.artifact_provenance()
        assert provenance["matching"]["source"] == "loaded"
        assert provenance["mapping_set"]["source"] == "loaded"
        assert store.stats()["hits"] == 1
        assert answer_set(session.execute(self.D1_QUERY, use_cache=False)) == baseline
        store.blocks.close()

    def test_truncated_blob_degrades_to_clean_rebuild(self, tmp_path):
        path, ref, baseline = self.populated(tmp_path)
        with SqliteBlockStore(path) as blocks:
            manifest_key = blocks.get_ref(ref)
            payload = blocks.get_block(manifest_key)
            blocks._write(manifest_key, payload[:10])
        with pytest.warns(RuntimeWarning, match="cold build"):
            session, store = self.reopen(path)
        assert session.artifact_provenance()["matching"]["source"] == "built"
        assert store.stats()["misses"] == 1
        assert answer_set(session.execute(self.D1_QUERY, use_cache=False)) == baseline
        store.blocks.close()

    def test_wrong_checksum_degrades_to_clean_rebuild(self, tmp_path):
        path, ref, baseline = self.populated(tmp_path)
        with SqliteBlockStore(path) as blocks:
            # Corrupt every block: whatever load_session touches first trips.
            for key in list(blocks.iter_keys()):
                blocks._write(key, b"x" + blocks._read(key))
        with pytest.warns(RuntimeWarning, match="cold build"):
            session, store = self.reopen(path)
        assert session.artifact_provenance()["matching"]["source"] == "built"
        assert answer_set(session.execute(self.D1_QUERY, use_cache=False)) == baseline
        store.blocks.close()

    def test_corrupted_store_warns_naming_the_ref(self, tmp_path):
        """A corrupt store must not degrade *silently*: the fallback warns.

        Regression test for the bare ``except Exception: return None`` that
        used to swallow every store failure on reopen — corruption looked
        exactly like an empty store.
        """
        path, ref, baseline = self.populated(tmp_path)
        with SqliteBlockStore(path) as blocks:
            manifest_key = blocks.get_ref(ref)
            blocks._write(manifest_key, b"garbage that fails the checksum")
        with SqliteBlockStore(path) as blocks:
            with pytest.warns(RuntimeWarning, match="cold build") as caught:
                session = Dataspace.from_dataset(
                    "D1", h=self.H, store=ArtifactStore(blocks)
                )
            assert any(ref in str(w.message) for w in caught)
            assert session.artifact_provenance()["matching"]["source"] == "built"
            assert answer_set(session.execute(self.D1_QUERY, use_cache=False)) == baseline

    def test_plain_miss_does_not_warn(self, tmp_path, recwarn):
        """An absent ref is the normal cold-start path — no warning."""
        with SqliteBlockStore(str(tmp_path / "empty.db")) as blocks:
            session = Dataspace.from_dataset(
                "D1", h=self.H, store=ArtifactStore(blocks)
            )
            assert session.artifact_provenance()["matching"]["source"] == "built"
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]

    def test_non_store_errors_propagate_from_reopen(self):
        """Only :class:`StoreError` is a store miss; anything else is a bug."""

        class ExplodingStore(MemoryBlockStore):
            def get_ref(self, name):
                raise ZeroDivisionError("not a store failure")

        with pytest.raises(ZeroDivisionError):
            Dataspace.from_dataset("D1", h=self.H, store=ExplodingStore())

    def test_stale_signature_degrades_to_clean_rebuild(self, tmp_path):
        path, _, _ = self.populated(tmp_path)
        with SqliteBlockStore(path) as blocks:
            store = ArtifactStore(blocks)
            session = Dataspace.from_dataset("D1", h=self.H + 1, store=store)
            assert session.artifact_provenance()["matching"]["source"] == "built"
            assert store.stats()["misses"] == 1
            assert len(session.execute(self.D1_QUERY, use_cache=False)) >= 0

    def test_concurrent_writers_then_reopen(self, tmp_path):
        path, _, baseline = self.populated(tmp_path)
        errors: list[Exception] = []

        def persist_again() -> None:
            try:
                with SqliteBlockStore(path) as blocks:
                    session = Dataspace.from_dataset(
                        "D1", h=self.H, store=ArtifactStore(blocks)
                    )
                    session.persist()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=persist_again) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        session, store = self.reopen(path)
        assert store.verify()["errors"] == 0
        assert answer_set(session.execute(self.D1_QUERY, use_cache=False)) == baseline
        store.blocks.close()


class FailOnWriteStore(MemoryBlockStore):
    """A block store that starts failing writes when ``fail`` is flipped."""

    def __init__(self) -> None:
        super().__init__()
        self.fail = False

    def _write(self, key: str, data: bytes) -> None:
        if self.fail:
            raise StoreError("disk full")
        super()._write(key, data)

    def set_ref(self, name: str, key: str) -> None:
        if self.fail:
            raise StoreError("disk full")
        super().set_ref(name, key)


class TestDeltaWriteThroughFailureReporting:
    """The apply_delta write-through stays best-effort but never silent.

    Regression tests for the bare ``except Exception: pass`` around the
    delta write-through: a failed persist used to be indistinguishable from
    a successful one, leaving the store silently stale.
    """

    def delta(self, session):
        from repro.engine import MappingDelta

        mapping_set = session.mapping_set
        return MappingDelta.build(
            reweight={
                0: mapping_set[1].probability,
                1: mapping_set[0].probability,
            }
        )

    def attached_session(self, figure_mappings, figure_document):
        store = FailOnWriteStore()
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        session.persist(store)
        return session, store

    def test_successful_write_through_reports_clean(
        self, figure_mappings, figure_document, recwarn
    ):
        session, store = self.attached_session(figure_mappings, figure_document)
        report = session.apply_delta(self.delta(session))
        assert not report.persist_failed
        assert report.persist_error is None
        assert session.cache_stats()["store"]["persist_failures"] == 0
        assert report.to_dict()["persist_failed"] is False
        assert "persist" not in report.format()
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]

    def test_failed_write_through_is_recorded_and_warns_once(
        self, figure_mappings, figure_document
    ):
        session, store = self.attached_session(figure_mappings, figure_document)
        store.fail = True
        with pytest.warns(RuntimeWarning, match="write-through"):
            report = session.apply_delta(self.delta(session))
        assert report.persist_failed
        assert "disk full" in report.persist_error
        assert report.to_dict()["persist_error"] == report.persist_error
        assert "FAILED" in report.format()
        assert session.cache_stats()["store"]["persist_failures"] == 1

        # The delta itself was applied: the in-memory session moved on.
        assert session.delta_epoch == report.delta_epoch

        # Later failures are counted but do not warn again.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            second = session.apply_delta(self.delta(session))
        assert second.persist_failed
        assert session.cache_stats()["store"]["persist_failures"] == 2

    def test_failure_counter_flows_into_service_stats(
        self, figure_mappings, figure_document
    ):
        from repro.service import QueryService

        session, store = self.attached_session(figure_mappings, figure_document)
        store.fail = True
        with pytest.warns(RuntimeWarning):
            session.apply_delta(self.delta(session))
        with QueryService(session, max_workers=1) as service:
            assert service.stats()["store"]["persist_failures"] == 1

    def test_recovery_resumes_clean_reports(self, figure_mappings, figure_document):
        session, store = self.attached_session(figure_mappings, figure_document)
        store.fail = True
        with pytest.warns(RuntimeWarning):
            failed = session.apply_delta(self.delta(session))
        assert failed.persist_failed
        store.fail = False
        recovered = session.apply_delta(self.delta(session))
        assert not recovered.persist_failed
        assert recovered.persist_error is None
        # The counter keeps its history; only new failures increment it.
        assert session.cache_stats()["store"]["persist_failures"] == 1
