"""Unit tests for the kernel backends of the compiled core.

Covers backend selection (explicit argument, ``REPRO_KERNELS`` environment
variable, auto-detection, and the :class:`KernelError` cases), the variant
memoization on :meth:`MappingSet.compile`, and — on interpreters where numpy
is importable — operation-level identity between the pure-Python and numpy
kernels on both narrow (single-word) and wide (multi-word) mask columns.
"""

from __future__ import annotations

import pytest

import repro.engine.kernels as kernels_module
from repro.engine import Dataspace
from repro.engine.kernels import (
    KERNELS_ENV_VAR,
    Kernels,
    PythonKernels,
    available_backends,
    default_backend_name,
    resolve_kernels,
)
from repro.exceptions import KernelError

BACKENDS = available_backends()
HAVE_NUMPY = "numpy" in BACKENDS

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")


class TestBackendSelection:
    def test_python_backend_always_available(self):
        assert BACKENDS[0] == "python"
        assert isinstance(resolve_kernels("python"), PythonKernels)

    def test_backends_are_singletons(self):
        assert resolve_kernels("python") is resolve_kernels("python")
        if HAVE_NUMPY:
            assert resolve_kernels("numpy") is resolve_kernels("numpy")

    def test_instance_passes_through(self):
        backend = resolve_kernels("python")
        assert resolve_kernels(backend) is backend

    def test_names_are_case_insensitive(self):
        assert resolve_kernels("Python").name == "python"
        assert resolve_kernels("AUTO").name == default_backend_name()

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV_VAR, raising=False)
        expected = "numpy" if HAVE_NUMPY else "python"
        assert resolve_kernels("auto").name == expected
        assert resolve_kernels(None).name == expected
        assert default_backend_name() == expected

    def test_env_var_forces_python(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "python")
        assert resolve_kernels(None).name == "python"
        # An explicit argument still beats the environment.
        if HAVE_NUMPY:
            assert resolve_kernels("numpy").name == "numpy"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "fortran")
        with pytest.raises(KernelError, match="unknown kernel backend"):
            resolve_kernels(None)

    def test_unknown_name_raises(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            resolve_kernels("cuda")

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        # Simulate a numpy-less interpreter: the probe result is memoized in
        # the module, so patching it to "probed and absent" is equivalent.
        monkeypatch.setattr(kernels_module, "_numpy_backend", False)
        with pytest.raises(KernelError, match="not importable"):
            resolve_kernels("numpy")
        monkeypatch.setenv(KERNELS_ENV_VAR, "numpy")
        with pytest.raises(KernelError, match="not importable"):
            resolve_kernels(None)
        # "auto" is the spelling that may degrade silently.
        assert resolve_kernels("auto").name == "python"


class TestCompileVariants:
    def test_variants_share_neutral_columns(self, figure_mappings):
        default = figure_mappings.compile()
        for backend in BACKENDS:
            variant = figure_mappings.compile(backend)
            assert variant.kernels.name == backend
            # Same memoized object when the backend matches, a re-skin
            # sharing the neutral dicts otherwise — never a recompile.
            if backend == default.kernels.name:
                assert variant is default
            else:
                assert variant._pair_masks is default._pair_masks
                assert variant._covered_masks is default._covered_masks
                assert variant._target_sources is default._target_sources
                assert variant.probabilities is default.probabilities
            # Repeated requests return the memoized variant.
            assert figure_mappings.compile(backend) is variant

    def test_stats_report_backend(self, figure_mappings):
        for backend in BACKENDS:
            assert figure_mappings.compile(backend).stats()["kernel_backend"] == backend

    def test_dataspace_threads_backend(self, figure_mappings, figure_document):
        for backend in BACKENDS:
            session = Dataspace.from_mapping_set(
                figure_mappings, document=figure_document, kernels=backend
            )
            assert session.kernels.name == backend
            assert session.compiled.kernels.name == backend
            report = session.explain("//INVOICE_PARTY//CONTACT_NAME")
            assert report.compiled_stats["kernel_backend"] == backend

    def test_dataspace_rejects_unknown_backend(self, figure_mappings, figure_document):
        with pytest.raises(KernelError):
            Dataspace.from_mapping_set(
                figure_mappings, document=figure_document, kernels="no-such-backend"
            )

    def test_env_var_selects_session_backend(
        self, figure_mappings, figure_document, monkeypatch
    ):
        monkeypatch.setenv(KERNELS_ENV_VAR, "python")
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        assert session.kernels.name == "python"


@needs_numpy
class TestOperationIdentity:
    """Every kernel operation agrees bit-for-bit across backends."""

    def pair(self, mapping_set):
        python = mapping_set.compile("python")
        numpy = mapping_set.compile("numpy")
        return python, numpy

    def check_identity(self, mapping_set):
        python, numpy = self.pair(mapping_set)
        p_state = python.kernels.bind(python)
        n_state = numpy.kernels.bind(numpy)
        all_mask = python.all_mask
        targets = sorted(python._covered_masks)

        # Coverage intersections, including missing targets and empty input.
        missing = max(targets) + 1000
        for subset in ([], targets[:1], targets[:3], targets, [missing], targets[:2] + [missing]):
            expected = python.kernels.coverage_mask(p_state, subset)
            assert numpy.kernels.coverage_mask(n_state, subset) == expected

        # Union-of-coverage over several target sets.
        sets = [targets[:2], targets[1:4], [missing], targets]
        assert python.kernels.union_coverage(p_state, sets) == numpy.kernels.union_coverage(
            n_state, sets
        )

        # Partition refinement: identical groups in identical order.
        for required in (targets[:1], targets[:2], targets[:4]):
            candidates = python.kernels.coverage_mask(p_state, required)
            expected_groups = python.kernels.refine_groups(p_state, required, candidates)
            got_groups = numpy.kernels.refine_groups(n_state, required, candidates)
            assert got_groups == expected_groups

        # Probability column operations — exact float equality.
        masks = [0, 1, all_mask, all_mask >> 1, all_mask & 0x5555555555555555]
        for mask in masks:
            assert python.kernels.gather_probabilities(
                p_state, mask
            ) == numpy.kernels.gather_probabilities(n_state, mask)
            p_mass = python.kernels.probability_mass(p_state, mask)
            n_mass = numpy.kernels.probability_mass(n_state, mask)
            assert p_mass == n_mass
            assert p_mass.hex() == n_mass.hex()
        assert python.kernels.max_probability(p_state) == numpy.kernels.max_probability(
            n_state
        )

        # Shared scalar algebra and batched popcounts.
        assert python.kernels.popcounts(python._pair_masks.values()) == numpy.kernels.popcounts(
            numpy._pair_masks.values()
        )

    def test_identity_on_single_word_masks(self, figure_mappings):
        # Five mappings: every mask fits one 64-bit word.
        self.check_identity(figure_mappings)

    def test_identity_on_multi_word_masks(self, d7_mappings):
        # One hundred mappings: masks span two uint64 words, so the word
        # packing, cross-word popcounts and broadcast refinement are all hit.
        assert len(d7_mappings) > 64
        self.check_identity(d7_mappings)

    def test_numpy_backend_reports_gil_release(self):
        python = resolve_kernels("python")
        numpy = resolve_kernels("numpy")
        assert not python.releases_gil
        assert numpy.releases_gil
        assert isinstance(numpy, Kernels)
