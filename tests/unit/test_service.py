"""Tests for the concurrent service layer: cache, locks, batches, service.

The figure fixtures (paper Figures 1-3) keep these fast; everything here is
about the *serving* semantics — LRU behaviour, generation-keyed staleness,
shared filter prefixes, single-flight de-duplication — not about query
answers, which the differential/golden suites own.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import Dataspace, ReadWriteLock, ResultCache
from repro.exceptions import DataspaceError
from repro.service import QueryService
from repro.service.service import percentile

ICN_QUERY = "//INVOICE_PARTY//CONTACT_NAME"
SCN_QUERY = "//SUPPLIER_PARTY//CONTACT_NAME"


def answers_of(result):
    return {(answer.mapping_id, answer.matches) for answer in result}


@pytest.fixture()
def figure_dataspace(figure_mappings, figure_document):
    """A session over the Figure 3 mapping set and Figure 2 document."""
    return Dataspace.from_mapping_set(
        figure_mappings, document=figure_document, tau=0.4, name="figure1"
    )


# --------------------------------------------------------------------------- #
# ResultCache
# --------------------------------------------------------------------------- #
class TestResultCache:
    def test_get_put_roundtrip(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache and len(cache) == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_first_writer_wins(self):
        cache = ResultCache(capacity=2)
        first = cache.put("a", object())
        second = cache.put("a", object())
        assert second is first

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        assert not cache.enabled
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_stats_snapshot(self):
        cache = ResultCache(capacity=2)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert stats.to_dict()["hit_rate"] == 0.5

    def test_clear_keeps_stats(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_peek_does_not_touch_counters(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0


# --------------------------------------------------------------------------- #
# ReadWriteLock
# --------------------------------------------------------------------------- #
class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers are inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        writer_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                order.append("write")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read_locked():
                order.append("read")

        lock.acquire_read()  # hold the lock so the writer must wait
        write_thread = threading.Thread(target=writer)
        write_thread.start()
        read_thread = threading.Thread(target=reader)
        read_thread.start()
        lock.release_read()
        write_thread.join(timeout=5)
        read_thread.join(timeout=5)
        assert order == ["write", "read"]

    def test_writer_preference_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        waiting = threading.Thread(target=lock.acquire_write)
        waiting.start()
        # Give the writer time to register as waiting; a fresh reader must
        # now block rather than overtake it.
        import time

        time.sleep(0.05)
        blocked = threading.Thread(target=lock.acquire_read)
        blocked.start()
        blocked.join(timeout=0.1)
        assert blocked.is_alive()  # reader is parked behind the waiting writer
        lock.release_read()
        waiting.join(timeout=5)
        lock.release_write()
        blocked.join(timeout=5)
        assert not blocked.is_alive()
        lock.release_read()


# --------------------------------------------------------------------------- #
# Session result cache semantics
# --------------------------------------------------------------------------- #
class TestSessionResultCache:
    def test_repeat_execute_hits_cache(self, figure_dataspace):
        ds = figure_dataspace
        first = ds.execute(ICN_QUERY)
        second = ds.execute(ICN_QUERY)
        assert second is first  # same object, served from the cache
        stats = ds.result_cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_distinct_plans_cached_separately(self, figure_dataspace):
        ds = figure_dataspace
        tree = ds.execute(ICN_QUERY, plan="blocktree")
        basic = ds.execute(ICN_QUERY, plan="basic")
        assert tree is not basic
        assert answers_of(tree) == answers_of(basic)

    def test_topk_cached_separately_from_full(self, figure_dataspace):
        ds = figure_dataspace
        full = ds.execute(ICN_QUERY)
        top = ds.execute(ICN_QUERY, k=2)
        assert len(full) == 5 and len(top) == 2
        assert ds.execute(ICN_QUERY, k=2) is top

    def test_generation_bump_prevents_stale_hits(self, figure_dataspace):
        ds = figure_dataspace
        before = ds.execute(ICN_QUERY)
        ds.invalidate()
        after = ds.execute(ICN_QUERY)
        assert after is not before  # old generation's entry is unreachable
        assert answers_of(after) == answers_of(before)

    def test_tau_change_separates_entries(self, figure_dataspace):
        ds = figure_dataspace
        before = ds.execute(ICN_QUERY)
        ds.configure(tau=0.9)
        after = ds.execute(ICN_QUERY)
        assert after is not before
        assert answers_of(after) == answers_of(before)

    def test_document_swap_prevents_stale_hits(self, figure_dataspace, figure_elements):
        from repro.document.document import XMLDocument

        ds = figure_dataspace
        populated = ds.execute(ICN_QUERY)
        assert any(not answer.is_empty for answer in populated)
        empty = XMLDocument(ds.source_schema, name="empty.xml")
        empty.add_root(figure_elements["Order"])
        ds.set_document(empty.finalize())
        swapped = ds.execute(ICN_QUERY)
        assert all(answer.is_empty for answer in swapped)

    def test_use_cache_false_bypasses(self, figure_dataspace):
        ds = figure_dataspace
        first = ds.execute(ICN_QUERY, use_cache=False)
        second = ds.execute(ICN_QUERY, use_cache=False)
        assert first is not second
        stats = ds.result_cache.stats()
        assert stats.lookups == 0

    def test_cache_size_zero_disables(self, figure_mappings, figure_document):
        ds = Dataspace.from_mapping_set(
            figure_mappings, document=figure_document, tau=0.4, cache_size=0
        )
        assert ds.execute(ICN_QUERY) is not ds.execute(ICN_QUERY)

    def test_cache_size_zero_disables_filter_cache_too(
        self, figure_mappings, figure_document
    ):
        ds = Dataspace.from_mapping_set(
            figure_mappings, document=figure_document, tau=0.4, cache_size=0
        )
        ds.execute(ICN_QUERY)
        stats = ds.cache_stats()["filter_cache"]
        assert stats["capacity"] == 0 and stats["size"] == 0

    def test_prepared_cache_is_bounded(self, figure_mappings, figure_document, monkeypatch):
        import repro.engine.dataspace as dataspace_module

        monkeypatch.setattr(dataspace_module, "_PREPARED_CACHE_CAPACITY", 2)
        ds = Dataspace.from_mapping_set(
            figure_mappings, document=figure_document, tau=0.4
        )
        oldest = ds.prepare(ICN_QUERY)
        ds.prepare(SCN_QUERY)
        ds.prepare("ORDER")  # capacity 2: evicts the LRU entry (ICN)
        assert ds.prepare(ICN_QUERY) is not oldest  # re-prepared after eviction
        assert ds.prepare("ORDER") is ds.prepare("ORDER")

    def test_twig_keys_never_reused_after_gc(self, figure_dataspace, monkeypatch):
        # Twig-object keys come from a monotonic counter, so a new twig
        # allocated after an old one was evicted and garbage-collected can
        # never inherit its result-cache entries (as a raw id()-based key
        # could, once the bounded prepared cache no longer pins the twig).
        import gc

        from repro.query.parser import parse_twig

        ds = figure_dataspace
        old = parse_twig(ICN_QUERY)
        old_key = ds.prepare(old).cache_key
        del old
        gc.collect()
        new = parse_twig("//SUPPLIER_PARTY//CONTACT_NAME")
        new_key = ds.prepare(new).cache_key
        assert old_key != new_key
        # And the same live twig keeps one stable key across prepares.
        assert ds.prepare(new).cache_key == new_key

    def test_builder_no_cache(self, figure_dataspace):
        ds = figure_dataspace
        builder = ds.query(ICN_QUERY).no_cache()
        assert builder.execute() is not builder.execute()

    def test_explain_reports_cache_participation(self, figure_dataspace):
        ds = figure_dataspace
        first = ds.explain(ICN_QUERY)
        second = ds.explain(ICN_QUERY)
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert second.cache_stats["hits"] >= 1
        assert "cache:" in second.format()
        assert second.to_dict()["cache"] == "hit"
        bypass = ds.explain(ICN_QUERY, use_cache=False)
        assert bypass.cache == "bypass"
        assert bypass.cache_stats is None

    def test_describe_includes_cache_stats(self, figure_dataspace):
        ds = figure_dataspace
        ds.execute(ICN_QUERY)
        info = ds.describe()
        assert info["result_cache"]["misses"] == 1
        assert "filter_cache" in info

    def test_clear_caches(self, figure_dataspace):
        ds = figure_dataspace
        ds.execute(ICN_QUERY)
        ds.clear_caches()
        assert len(ds.result_cache) == 0
        again = ds.execute(ICN_QUERY)
        assert ds.result_cache.stats().misses == 2
        assert len(again) == 5


# --------------------------------------------------------------------------- #
# Shared filter prefix
# --------------------------------------------------------------------------- #
class TestSharedFilterPrefix:
    def test_same_signature_queries_share_filter_pass(self, figure_dataspace):
        ds = figure_dataspace
        # Distinct query texts whose embeddings require the same target
        # elements ({INVOICE_PARTY, CONTACT_NAME}) share one filter pass.
        ds.execute("//INVOICE_PARTY/CONTACT_NAME")
        misses_before = ds.cache_stats()["filter_cache"]["misses"]
        ds.execute("//INVOICE_PARTY//CONTACT_NAME")
        stats = ds.cache_stats()["filter_cache"]
        # The second query's signature matches the first's, so no new miss.
        assert stats["misses"] == misses_before
        assert stats["hits"] >= 1

    def test_relevant_for_is_generation_keyed(self, figure_dataspace):
        ds = figure_dataspace
        prepared = ds.prepare(ICN_QUERY)
        first = prepared.relevant_mappings()
        assert prepared.filter_count == 1
        prepared.relevant_mappings()
        assert prepared.filter_count == 1
        ds.invalidate()
        second = prepared.relevant_mappings()
        assert prepared.filter_count == 2
        assert [m.mapping_id for m in first] == [m.mapping_id for m in second]


# --------------------------------------------------------------------------- #
# Batched execution
# --------------------------------------------------------------------------- #
class TestQueryBatch:
    def test_batch_parallel_matches_sequential(self, figure_dataspace):
        ds = figure_dataspace
        queries = [ICN_QUERY, SCN_QUERY, "ORDER", ICN_QUERY]
        sequential = ds.query_batch(queries, use_cache=False)
        parallel = ds.query_batch(queries, max_workers=4, use_cache=False)
        assert [answers_of(r) for r in sequential] == [answers_of(r) for r in parallel]

    def test_batch_deduplicates_identical_queries(self, figure_dataspace):
        ds = figure_dataspace
        results = ds.query_batch([ICN_QUERY, ICN_QUERY, ICN_QUERY], use_cache=False)
        assert results[0] is results[1] is results[2]

    def test_batch_empty(self, figure_dataspace):
        assert figure_dataspace.query_batch([]) == []

    def test_batch_respects_k_and_plan(self, figure_dataspace):
        ds = figure_dataspace
        results = ds.query_batch([ICN_QUERY, SCN_QUERY], k=2, plan="basic")
        assert len(results[0]) == 2  # five relevant mappings, top-2 kept
        assert len(results[1]) == 1  # only one mapping covers SUPPLIER_PARTY
        for query, result in zip([ICN_QUERY, SCN_QUERY], results):
            expected = ds.execute(query, k=2, plan="basic", use_cache=False)
            assert answers_of(result) == answers_of(expected)

    def test_batch_alias_unchanged(self, figure_dataspace):
        ds = figure_dataspace
        batch = ds.batch([ICN_QUERY, SCN_QUERY], k=3)
        for query, result in zip([ICN_QUERY, SCN_QUERY], batch):
            assert answers_of(result) == answers_of(ds.execute(query, k=3))


# --------------------------------------------------------------------------- #
# QueryService
# --------------------------------------------------------------------------- #
class TestQueryService:
    def test_submit_returns_future_with_result(self, figure_dataspace):
        with QueryService(figure_dataspace, max_workers=2) as service:
            future = service.submit(ICN_QUERY)
            result = future.result(timeout=10)
        assert len(result) == 5

    def test_submit_many_order_preserved(self, figure_dataspace):
        with QueryService(figure_dataspace, max_workers=2) as service:
            futures = service.submit_many([ICN_QUERY, "ORDER"], k=2)
            results = [future.result(timeout=10) for future in futures]
        assert all(len(result) == 2 for result in results)

    def test_execute_many_matches_individual_execution(self, figure_dataspace):
        queries = [ICN_QUERY, SCN_QUERY, "ORDER"]
        with QueryService(figure_dataspace, max_workers=4) as service:
            batched = service.execute_many(queries, k=3)
        for query, result in zip(queries, batched):
            assert answers_of(result) == answers_of(figure_dataspace.execute(query, k=3))

    def test_execute_records_latency_and_counts(self, figure_dataspace):
        with QueryService(figure_dataspace, max_workers=2) as service:
            service.execute(ICN_QUERY)
            service.execute(ICN_QUERY)
            stats = service.stats()
        assert stats["submitted"] == 2 and stats["completed"] == 2
        assert stats["errors"] == 0
        assert stats["latency_ms"] is not None
        assert stats["result_cache"]["hits"] >= 1

    def test_error_accounted_and_raised(self, figure_dataspace):
        from repro.exceptions import QueryError

        with QueryService(figure_dataspace, max_workers=2) as service:
            with pytest.raises(QueryError):
                service.execute(ICN_QUERY, k=0)
            stats = service.stats()
        assert stats["errors"] == 1

    def test_closed_service_rejects_submissions(self, figure_dataspace):
        service = QueryService(figure_dataspace, max_workers=1)
        service.close()
        with pytest.raises(DataspaceError):
            service.submit(ICN_QUERY)
        with pytest.raises(DataspaceError):
            service.execute_many([ICN_QUERY])

    def test_invalid_worker_count_rejected(self, figure_dataspace):
        with pytest.raises(DataspaceError):
            QueryService(figure_dataspace, max_workers=0)

    def test_single_flight_shares_inflight_future(self, figure_dataspace):
        # Park the pool's only worker so submissions stay queued, then check
        # that identical queued requests share one future.
        gate = threading.Event()
        with QueryService(figure_dataspace, max_workers=1, use_cache=False) as service:
            service._pool.submit(gate.wait, 10)
            first = service.submit(ICN_QUERY)
            second = service.submit(ICN_QUERY)
            distinct = service.submit(SCN_QUERY)
            gate.set()
            assert second is first
            assert distinct is not first
            first.result(timeout=10)
            distinct.result(timeout=10)
            # Done-callbacks run asynchronously; wait for the counters to
            # converge: every submit (including the deduped join) completes.
            import time

            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                stats = service.stats()
                if stats["completed"] == stats["submitted"]:
                    break
                time.sleep(0.01)
            assert stats["deduped"] == 1
            assert stats["submitted"] == 3
            assert stats["completed"] == 3  # no phantom in-flight work

    def test_single_flight_does_not_cross_generations(self, figure_dataspace):
        # A submit issued after a committed reconfiguration must not join a
        # pre-reconfiguration flight: generation is part of the flight key.
        gate = threading.Event()
        with QueryService(figure_dataspace, max_workers=1, use_cache=False) as service:
            service._pool.submit(gate.wait, 10)
            before = service.submit(ICN_QUERY)
            figure_dataspace.invalidate()
            after = service.submit(ICN_QUERY)
            gate.set()
            assert after is not before
            assert answers_of(after.result(timeout=10)) == answers_of(
                before.result(timeout=10)
            )
            assert service.stats()["deduped"] == 0

    def test_failed_batch_accounting_converges(self, figure_dataspace):
        from repro.exceptions import ReproError

        with QueryService(figure_dataspace, max_workers=2) as service:
            with pytest.raises(ReproError):
                service.execute_many([ICN_QUERY, "ORDER/["])
            stats = service.stats()
        assert stats["submitted"] == 2
        assert stats["completed"] == 2  # no phantom in-flight work
        assert stats["errors"] == 2

    def test_stats_expose_worker_count(self, figure_dataspace):
        with QueryService(figure_dataspace, max_workers=3) as service:
            assert service.max_workers == 3
            assert service.stats()["max_workers"] == 3
            assert repr(service).startswith("QueryService(")


class TestPercentile:
    def test_interpolation(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 1.0) == 40.0
        assert percentile(values, 0.5) == 25.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


# --------------------------------------------------------------------------- #
# Corpus-backed service (scatter-gather routing)
# --------------------------------------------------------------------------- #
class TestCorpusBackedService:
    @pytest.fixture()
    def corpus(self, figure_dataspace):
        return figure_dataspace.shard(3)

    def test_execute_routes_through_scatter_gather(self, figure_dataspace, corpus):
        with QueryService(corpus, max_workers=2) as service:
            assert service.corpus is corpus
            assert service.dataspace is figure_dataspace
            served = service.execute(ICN_QUERY)
        direct = figure_dataspace.execute(ICN_QUERY, use_cache=False)
        assert answers_of(served) == answers_of(direct)

    def test_submit_and_execute_many_match_session(self, figure_dataspace, corpus):
        queries = [ICN_QUERY, SCN_QUERY, ICN_QUERY]
        with QueryService(corpus, max_workers=2) as service:
            futures = service.submit_many(queries)
            submitted = [future.result(timeout=30) for future in futures]
            batched = service.execute_many(queries)
        # After close() the workers are joined, so every done-callback (which
        # updates the completion counters) has run.
        stats = service.stats()
        for query, via_future, via_batch in zip(queries, submitted, batched):
            direct = figure_dataspace.execute(query, use_cache=False)
            assert answers_of(via_future) == answers_of(direct)
            assert answers_of(via_batch) == answers_of(direct)
        assert stats["completed"] == stats["submitted"]

    def test_single_flight_scoped_to_corpus(self, corpus):
        with QueryService(corpus, max_workers=2) as service:
            first = service.submit(ICN_QUERY)
            second = service.submit(ICN_QUERY)
            first.result(timeout=30)
            second.result(timeout=30)
        # Identical concurrent submits may share one in-flight future; what
        # matters is both complete and answers agree.
        assert answers_of(first.result()) == answers_of(second.result())

    def test_plan_override_rejected(self, corpus):
        with QueryService(corpus, max_workers=2) as service:
            with pytest.raises(DataspaceError):
                service.execute(ICN_QUERY, plan="basic")
            with pytest.raises(DataspaceError):
                service.submit(ICN_QUERY, plan="blocktree")
            with pytest.raises(DataspaceError):
                service.execute_many([ICN_QUERY], plan="compiled")

    def test_multi_dataset_corpus_rejected(self, figure_mappings, figure_document):
        from repro.corpus import ShardedCorpus

        first = Dataspace.from_mapping_set(figure_mappings, document=figure_document, name="L")
        second = Dataspace.from_mapping_set(figure_mappings, document=figure_document, name="R")
        corpus = ShardedCorpus([first, second])
        with pytest.raises(DataspaceError):
            QueryService(corpus)

    def test_warm_corpus_requests_hit_cache(self, figure_dataspace, corpus):
        with QueryService(corpus, max_workers=2) as service:
            cold = service.execute(ICN_QUERY)
            warm = service.execute(ICN_QUERY)
        assert warm is cold
        assert figure_dataspace.result_cache.stats().hits >= 1


# --------------------------------------------------------------------------- #
# Replay driver: mixed read/write streams
# --------------------------------------------------------------------------- #
class TestReplayDriver:
    def test_mixed_workload_interleaves_deltas(self, figure_dataspace):
        from repro.service import ReplayOp, replay_workload, swap_reweight_delta

        delta = swap_reweight_delta(figure_dataspace)
        before = figure_dataspace.delta_epoch
        with QueryService(figure_dataspace, max_workers=2) as service:
            ops = [
                ReplayOp("fig", ICN_QUERY),
                ReplayOp("fig", "<apply_delta>", delta=delta),
                ReplayOp("fig", ICN_QUERY),
                ReplayOp("fig", SCN_QUERY, k=2),
            ]
            assert [op.is_write for op in ops] == [False, True, False, False]
            report = replay_workload(ops, concurrency=1, services={"fig": service})
        assert report.errors == 0
        assert report.reads == 3
        assert report.writes == 1
        assert report.to_dict()["writes"] == 1
        assert "writes=1" in report.format()
        assert figure_dataspace.delta_epoch == before + 1

    def test_swap_reweight_delta_is_mass_preserving_and_replayable(
        self, figure_dataspace
    ):
        from repro.service import swap_reweight_delta

        delta = swap_reweight_delta(figure_dataspace)
        p0 = figure_dataspace.mapping_set[0].probability
        p1 = figure_dataspace.mapping_set[1].probability
        figure_dataspace.apply_delta(delta)
        assert figure_dataspace.mapping_set[0].probability == p1
        assert figure_dataspace.mapping_set[1].probability == p0
        # The same delta applies again without violating mass preservation.
        figure_dataspace.apply_delta(delta)
        assert figure_dataspace.mapping_set[0].probability == p1

    def test_build_mixed_workload_cycles_deltas(self):
        from repro.engine import MappingDelta
        from repro.service import build_mixed_workload

        deltas = [
            MappingDelta.build(reweight={0: 0.5, 1: 0.5}),
            MappingDelta.build(reweight={0: 0.6, 1: 0.4}),
        ]
        ops = build_mixed_workload(
            ["D1"], queries_per_dataset=2, repeats=3, deltas={"D1": deltas}
        )
        writes = [op for op in ops if op.is_write]
        assert len(writes) == 3
        assert [op.delta for op in writes] == [deltas[0], deltas[1], deltas[0]]
        assert all(not op.is_write or op.query == "<apply_delta>" for op in ops)
