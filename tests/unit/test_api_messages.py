"""Tests for the versioned wire schema (``repro.api.messages``)."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    PROTOCOL_VERSION,
    BadRequestError,
    BatchRequest,
    BatchResponse,
    CalibrateRequest,
    CalibrateResponse,
    DeltaRequest,
    DeltaResponse,
    ErrorResponse,
    ExplainRequest,
    ExplainResponse,
    OverloadedError,
    PingRequest,
    PingResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
    decode_request,
    decode_response,
    encode_message,
)

REQUESTS = [
    QueryRequest(query="Q1", k=5, plan="compiled", use_cache=False, stream=True),
    BatchRequest(queries=("Q1", "Q2"), k=3),
    DeltaRequest(delta={"reweight": {"0": 0.5}}),
    ExplainRequest(query="Q7", analyze=True),
    CalibrateRequest(query="Q1", plans=("basic", "compiled"), shard_counts=(2, 4)),
    StatsRequest(),
    PingRequest(),
]

RESPONSES = [
    QueryResponse(query="Q1", result={"num_answers": 0, "answers": []}),
    BatchResponse(queries=("Q1",), results=({"num_answers": 0, "answers": []},)),
    DeltaResponse(report={"changed": 1}),
    ExplainResponse(report={"plan": "compiled"}),
    CalibrateResponse(timings={"basic": 1.5}),
    StatsResponse(stats={"cache": {}}),
    PingResponse(),
    ErrorResponse(error={"code": "query", "type": "QueryError", "message": "x"}),
]


class TestRoundTrip:
    @pytest.mark.parametrize("request_", REQUESTS, ids=lambda r: type(r).__name__)
    def test_requests_round_trip(self, request_):
        assert decode_request(encode_message(request_)) == request_

    @pytest.mark.parametrize("response", RESPONSES, ids=lambda r: type(r).__name__)
    def test_responses_round_trip(self, response):
        assert decode_response(encode_message(response)) == response

    def test_encoding_is_canonical(self):
        """Compact separators, sorted keys — byte-stable for a given message."""
        data = encode_message(QueryRequest(query="Q1", k=5))
        assert data == encode_message(QueryRequest(query="Q1", k=5))
        text = data.decode("utf-8")
        assert ": " not in text and ", " not in text
        payload = json.loads(data)
        assert list(payload) == sorted(payload)

    def test_envelope_shape(self):
        payload = json.loads(encode_message(PingRequest()))
        assert payload["v"] == PROTOCOL_VERSION
        assert payload["op"] == "ping"
        assert payload["body"] == {}

    def test_tuples_encode_as_lists(self):
        payload = json.loads(encode_message(BatchRequest(queries=("Q1", "Q2"))))
        assert payload["body"]["queries"] == ["Q1", "Q2"]
        decoded = decode_request(encode_message(BatchRequest(queries=("Q1", "Q2"))))
        assert decoded.queries == ("Q1", "Q2")


class TestErrorResponse:
    def test_from_exception_and_back(self):
        response = ErrorResponse.from_exception(OverloadedError("shed", retry_after=0.4))
        restored = response.to_error()
        assert isinstance(restored, OverloadedError)
        assert restored.retry_after == 0.4
        assert str(restored) == "shed"

    def test_error_response_survives_the_wire(self):
        response = ErrorResponse.from_exception(BadRequestError("nope"))
        decoded = decode_response(encode_message(response))
        assert isinstance(decoded.to_error(), BadRequestError)


class TestRejection:
    def test_non_json_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_request(b"\xff\xfe not json")

    def test_non_object_envelope(self):
        with pytest.raises(BadRequestError):
            decode_request(b"[1,2,3]")

    def test_wrong_version(self):
        payload = {"v": PROTOCOL_VERSION + 1, "op": "ping", "body": {}}
        with pytest.raises(BadRequestError, match="protocol version"):
            decode_request(json.dumps(payload).encode())

    def test_missing_op(self):
        payload = {"v": PROTOCOL_VERSION, "body": {}}
        with pytest.raises(BadRequestError, match="'op'"):
            decode_request(json.dumps(payload).encode())

    def test_unknown_op(self):
        payload = {"v": PROTOCOL_VERSION, "op": "frobnicate", "body": {}}
        with pytest.raises(BadRequestError, match="frobnicate"):
            decode_request(json.dumps(payload).encode())

    def test_error_op_is_not_a_request(self):
        response = ErrorResponse.from_exception(BadRequestError("x"))
        with pytest.raises(BadRequestError, match="error"):
            decode_request(encode_message(response))

    def test_unknown_field_rejected(self):
        payload = {
            "v": PROTOCOL_VERSION,
            "op": "query",
            "body": {"query": "Q1", "bogus": 1},
        }
        with pytest.raises(BadRequestError, match="bogus"):
            decode_request(json.dumps(payload).encode())

    def test_non_object_body_rejected(self):
        payload = {"v": PROTOCOL_VERSION, "op": "query", "body": [1]}
        with pytest.raises(BadRequestError):
            decode_request(json.dumps(payload).encode())

    def test_messages_are_immutable(self):
        request = QueryRequest(query="Q1")
        with pytest.raises(Exception):
            request.query = "Q2"  # type: ignore[misc]
