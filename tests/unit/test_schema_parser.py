"""Tests for the schema text / XML parsers and serialisers."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaParseError
from repro.schema.parser import parse_schema, parse_schema_xml, schema_to_text, schema_to_xml

SIMPLE = """
Order
  Buyer
    Name
  Line *
    Quantity
"""


class TestParseText:
    def test_basic_structure(self):
        schema = parse_schema(SIMPLE, name="simple")
        assert schema.name == "simple"
        assert len(schema) == 5
        assert schema.element_by_path("Order.Line.Quantity").is_leaf

    def test_repeatable_marker(self):
        schema = parse_schema(SIMPLE)
        assert schema.element_by_path("Order.Line").repeatable
        assert not schema.element_by_path("Order.Buyer").repeatable

    def test_result_is_frozen(self):
        assert parse_schema(SIMPLE).frozen

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\nOrder\n\n  Buyer\n# another\n"
        schema = parse_schema(text)
        assert len(schema) == 2

    def test_bad_indentation_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema("Order\n   Buyer\n")  # three spaces

    def test_indentation_jump_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema("Order\n    Buyer\n")  # jumps two levels

    def test_multiple_roots_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema("Order\nInvoice\n")

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema("Order\n  9lives\n")

    def test_empty_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema("   \n# nothing\n")

    def test_round_trip(self):
        schema = parse_schema(SIMPLE, name="roundtrip")
        text = schema_to_text(schema)
        again = parse_schema(text, name="roundtrip")
        assert [e.path for e in again.iter_preorder()] == [
            e.path for e in schema.iter_preorder()
        ]
        assert [e.repeatable for e in again.iter_preorder()] == [
            e.repeatable for e in schema.iter_preorder()
        ]


class TestParseXml:
    XML = """
    <Order>
      <Buyer><Name/></Buyer>
      <Line repeatable="true">
        <Quantity/>
      </Line>
    </Order>
    """

    def test_basic_structure(self):
        schema = parse_schema_xml(self.XML, name="xml")
        assert len(schema) == 5
        assert schema.element_by_path("Order.Line").repeatable

    def test_round_trip(self):
        schema = parse_schema_xml(self.XML)
        xml = schema_to_xml(schema)
        again = parse_schema_xml(xml)
        assert [e.path for e in again.iter_preorder()] == [
            e.path for e in schema.iter_preorder()
        ]

    def test_mismatched_tags_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema_xml("<Order><Buyer></Order></Buyer>")

    def test_unclosed_tag_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema_xml("<Order><Buyer>")

    def test_unexpected_close_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema_xml("</Order>")

    def test_multiple_roots_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema_xml("<Order/><Invoice/>")

    def test_empty_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema_xml("   ")

    def test_text_round_trips_through_both_formats(self):
        schema = parse_schema(SIMPLE)
        via_xml = parse_schema_xml(schema_to_xml(schema))
        assert schema_to_text(via_xml) == schema_to_text(schema)
