"""Tests for the dataset and query workloads (Tables II and III)."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.query.resolve import resolve_query
from repro.workloads.datasets import (
    DATASET_IDS,
    DATASET_SPECS,
    build_mapping_set,
    load_dataset,
    load_source_document,
    standard_datasets,
)
from repro.workloads.queries import QUERY_IDS, QUERY_STRINGS, load_query, standard_queries


class TestDatasetSpecs:
    def test_ten_datasets(self):
        assert len(DATASET_IDS) == 10
        assert DATASET_IDS[0] == "D1" and DATASET_IDS[-1] == "D10"

    def test_schema_pairings_match_table2(self):
        assert DATASET_SPECS["D7"].source == "xcbl"
        assert DATASET_SPECS["D7"].target == "apertum"
        assert DATASET_SPECS["D1"].option == "f"
        assert DATASET_SPECS["D9"].target == "opentrans"
        assert DATASET_SPECS["D10"].source == "opentrans"

    def test_paper_reference_values_present(self):
        for spec in DATASET_SPECS.values():
            assert spec.paper_capacity > 0
            assert 0.0 < spec.paper_o_ratio <= 1.0


class TestLoadDataset:
    def test_d7_shapes(self, d7_dataset):
        assert len(d7_dataset.source_schema) == 1076
        assert len(d7_dataset.target_schema) == 166
        assert d7_dataset.matching.capacity > 100

    def test_describe_row(self, d7_dataset):
        row = d7_dataset.describe()
        assert row["id"] == "D7"
        assert row["|S|"] == 1076
        assert row["capacity"] == d7_dataset.matching.capacity

    def test_case_insensitive(self):
        assert load_dataset("d1") is load_dataset("D1")

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("D11")

    def test_standard_datasets_order(self):
        datasets = standard_datasets()
        assert [d.dataset_id for d in datasets] == list(DATASET_IDS)

    def test_fragment_option_sparser(self):
        d2 = load_dataset("D2")  # Excel -> Paragon, context
        d3 = load_dataset("D3")  # Excel -> Paragon, fragment
        assert d3.matching.capacity < d2.matching.capacity

    def test_matchings_sparse(self):
        for dataset_id in ("D1", "D5", "D8"):
            dataset = load_dataset(dataset_id)
            cross = len(dataset.source_schema) * len(dataset.target_schema)
            assert dataset.matching.capacity < 0.1 * cross


class TestMappingSets:
    def test_default_size(self, d7_mappings):
        assert len(d7_mappings) == 100
        assert sum(m.probability for m in d7_mappings) == pytest.approx(1.0)

    def test_high_overlap(self, d7_mappings):
        # The central observation of the paper: possible mappings of an XML
        # schema matching overlap heavily (Table II reports 0.53 - 0.91).
        assert d7_mappings.o_ratio() > 0.5

    def test_mappings_distinct(self, d7_mappings):
        assert len({m.correspondences for m in d7_mappings}) == len(d7_mappings)

    def test_scores_non_increasing(self, d7_mappings):
        scores = [m.score for m in d7_mappings]
        assert scores == sorted(scores, reverse=True)

    def test_cached(self):
        assert build_mapping_set("D1", 20) is build_mapping_set("D1", 20)

    def test_small_dataset_generation(self):
        mapping_set = build_mapping_set("D1", 25)
        assert len(mapping_set) == 25


class TestSourceDocument:
    def test_d7_document_conforms_to_xcbl(self, d7_document, d7_dataset):
        assert d7_document.schema is d7_dataset.source_schema
        assert abs(len(d7_document) - 3473) < 120
        d7_document.validate()

    def test_other_dataset_document(self):
        document = load_source_document("D1")
        assert document.schema.name == "excel"
        assert len(document) == 48


class TestQueries:
    def test_ten_queries(self):
        assert len(QUERY_IDS) == 10
        assert QUERY_IDS[0] == "Q1"

    def test_all_parse(self):
        queries = standard_queries()
        assert set(queries) == set(QUERY_IDS)
        assert all(len(query) >= 2 for query in queries.values())

    def test_aliases_expanded(self):
        query = load_query("Q4")
        assert "UnitPrice" in query.labels()
        assert "UP" not in query.labels()

    def test_unknown_query(self):
        with pytest.raises(DatasetError):
            load_query("Q99")

    def test_cached(self):
        assert load_query("Q1") is load_query("q1")

    def test_all_resolve_against_d7_target(self, d7_dataset):
        for query_id in QUERY_IDS:
            query = load_query(query_id)
            embeddings = resolve_query(query, d7_dataset.target_schema)
            assert embeddings, f"{query_id} does not resolve: {QUERY_STRINGS[query_id]}"

    def test_query_sizes_vary(self):
        sizes = {len(load_query(query_id)) for query_id in QUERY_IDS}
        assert len(sizes) >= 3
