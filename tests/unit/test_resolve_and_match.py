"""Tests for query resolution against the target schema and document matching."""

from __future__ import annotations

import pytest

from repro.document.document import XMLDocument
from repro.exceptions import QueryError
from repro.query.parser import parse_twig
from repro.query.resolve import resolve_query
from repro.query.twigmatch import match_twig, stack_join
from repro.schema.corpus import load_corpus_schema
from repro.schema.parser import parse_schema


class TestResolveQuery:
    def test_unique_embedding(self, target_schema):
        query = parse_twig("ORDER/INVOICE_PARTY/CONTACT_NAME")
        embeddings = resolve_query(query, target_schema)
        assert len(embeddings) == 1
        embedding = embeddings[0]
        assert target_schema.get(embedding[0]).path == "ORDER"
        assert target_schema.get(embedding[2]).path == "ORDER.INVOICE_PARTY.CONTACT_NAME"

    def test_descendant_axis_multiple_embeddings(self, target_schema):
        query = parse_twig("ORDER//CONTACT_NAME")
        embeddings = resolve_query(query, target_schema)
        # CONTACT_NAME exists under both SUPPLIER_PARTY and INVOICE_PARTY.
        assert len(embeddings) == 2

    def test_leading_descendant_root(self, target_schema):
        query = parse_twig("//INVOICE_PARTY//CONTACT_NAME")
        embeddings = resolve_query(query, target_schema)
        assert len(embeddings) == 1

    def test_child_axis_rejects_non_children(self, target_schema):
        query = parse_twig("ORDER/CONTACT_NAME")
        assert resolve_query(query, target_schema) == []

    def test_unknown_label_yields_no_embedding(self, target_schema):
        query = parse_twig("ORDER/NOT_A_LABEL")
        assert resolve_query(query, target_schema) == []

    def test_wrong_root_label(self, target_schema):
        query = parse_twig("PURCHASE/INVOICE_PARTY")
        assert resolve_query(query, target_schema) == []

    def test_predicate_branches_resolved(self):
        apertum = load_corpus_schema("apertum")
        query = parse_twig("Order/DeliverTo/Address[./City][./Country]/Street")
        embeddings = resolve_query(query, apertum)
        assert len(embeddings) == 1
        paths = {apertum.get(eid).path for eid in embeddings[0].values()}
        assert "Order.DeliverTo.Address.City" in paths
        assert "Order.DeliverTo.Address.Street" in paths

    def test_every_query_node_assigned(self):
        apertum = load_corpus_schema("apertum")
        query = parse_twig("Order[./Buyer/Contact]/POLine[.//BuyerPartID]/Quantity")
        embeddings = resolve_query(query, apertum)
        assert embeddings
        for embedding in embeddings:
            assert set(embedding) == {node.node_id for node in query.nodes}


@pytest.fixture()
def match_setup():
    schema = parse_schema(
        """
Order
  Party
    Contact
      Name
  Line *
    Quantity
    Price
""",
        name="match-src",
    )
    document = XMLDocument(schema, "doc")
    ids = {path: schema.element_by_path(path).element_id for path in (
        "Order", "Order.Party", "Order.Party.Contact", "Order.Party.Contact.Name",
        "Order.Line", "Order.Line.Quantity", "Order.Line.Price",
    )}
    order = document.add_root(ids["Order"])
    party = document.add_child(order, ids["Order.Party"])
    contact = document.add_child(party, ids["Order.Party.Contact"])
    document.add_child(contact, ids["Order.Party.Contact.Name"], value="Cathy")
    for quantity, price in (("3", "10.0"), ("5", "2.5")):
        line = document.add_child(order, ids["Order.Line"])
        document.add_child(line, ids["Order.Line.Quantity"], value=quantity)
        document.add_child(line, ids["Order.Line.Price"], value=price)
    document.finalize()
    return schema, document, ids


class TestMatchTwig:
    def test_single_node(self, match_setup):
        schema, document, ids = match_setup
        query = parse_twig("Quantity")
        matches = match_twig(document, query.root, {0: ids["Order.Line.Quantity"]})
        assert len(matches) == 2

    def test_two_level_containment(self, match_setup):
        schema, document, ids = match_setup
        query = parse_twig("Line/Quantity")
        element_map = {0: ids["Order.Line"], 1: ids["Order.Line.Quantity"]}
        matches = match_twig(document, query.root, element_map)
        assert len(matches) == 2
        for match in matches:
            assert match[0].is_ancestor_of(match[1])

    def test_branching_query_no_cross_products_across_lines(self, match_setup):
        schema, document, ids = match_setup
        query = parse_twig("Line[./Quantity]/Price")
        element_map = {
            0: ids["Order.Line"],
            1: ids["Order.Line.Quantity"],
            2: ids["Order.Line.Price"],
        }
        matches = match_twig(document, query.root, element_map)
        # Quantity and Price must come from the same Line instance.
        assert len(matches) == 2
        for match in matches:
            assert match[0].is_ancestor_of(match[1])
            assert match[0].is_ancestor_of(match[2])

    def test_value_predicate_filters(self, match_setup):
        schema, document, ids = match_setup
        query = parse_twig("Line/Quantity[. = '3']")
        element_map = {0: ids["Order.Line"], 1: ids["Order.Line.Quantity"]}
        matches = match_twig(document, query.root, element_map)
        assert len(matches) == 1
        assert matches[0][1].value == "3"

    def test_no_candidates_returns_empty(self, match_setup):
        schema, document, ids = match_setup
        query = parse_twig("Line/Quantity[. = '99']")
        element_map = {0: ids["Order.Line"], 1: ids["Order.Line.Quantity"]}
        assert match_twig(document, query.root, element_map) == []

    def test_containment_enforced(self, match_setup):
        schema, document, ids = match_setup
        # Party mapped to Line: Name is not inside any Line, so no match.
        query = parse_twig("Party/Name")
        element_map = {0: ids["Order.Line"], 1: ids["Order.Party.Contact.Name"]}
        assert match_twig(document, query.root, element_map) == []

    def test_missing_element_map_entry(self, match_setup):
        schema, document, ids = match_setup
        query = parse_twig("Line/Quantity")
        with pytest.raises(QueryError):
            match_twig(document, query.root, {0: ids["Order.Line"]})

    def test_unfinalized_document_rejected(self, match_setup):
        schema, _, ids = match_setup
        fresh = XMLDocument(schema)
        fresh.add_root(ids["Order"])
        query = parse_twig("Order")
        with pytest.raises(QueryError):
            match_twig(fresh, query.root, {0: ids["Order"]})


class TestStackJoin:
    def test_joins_nested_pairs(self, match_setup):
        schema, document, ids = match_setup
        lines = [{0: node} for node in document.nodes_of_element(ids["Order.Line"])]
        quantities = [{1: node} for node in document.nodes_of_element(ids["Order.Line.Quantity"])]
        joined = stack_join(lines, quantities, 0, 1)
        assert len(joined) == 2
        for match in joined:
            assert match[0].is_ancestor_of(match[1])

    def test_empty_inputs(self, match_setup):
        schema, document, ids = match_setup
        lines = [{0: node} for node in document.nodes_of_element(ids["Order.Line"])]
        assert stack_join([], lines, 0, 0) == []
        assert stack_join(lines, [], 0, 0) == []

    def test_non_nested_pairs_excluded(self, match_setup):
        schema, document, ids = match_setup
        parties = [{0: node} for node in document.nodes_of_element(ids["Order.Party"])]
        quantities = [{1: node} for node in document.nodes_of_element(ids["Order.Line.Quantity"])]
        assert stack_join(parties, quantities, 0, 1) == []

    def test_root_joins_with_everything(self, match_setup):
        schema, document, ids = match_setup
        roots = [{0: document.root}]
        quantities = [{1: node} for node in document.nodes_of_element(ids["Order.Line.Quantity"])]
        joined = stack_join(roots, quantities, 0, 1)
        assert len(joined) == 2

    def test_merged_dict_contains_both_sides(self, match_setup):
        schema, document, ids = match_setup
        roots = [{0: document.root}]
        names = [{3: node} for node in document.nodes_of_element(ids["Order.Party.Contact.Name"])]
        joined = stack_join(roots, names, 0, 3)
        assert set(joined[0]) == {0, 3}
