"""Tests for the cost-based planner: normalization, statistics, cost model.

Covers the planner package in isolation (canonical query rendering, the
statistics collector's accounting and serialization, the cost model's
conservative plan choice) and its integration with the engine (the normalized
prepared-query cache, decision caching and invalidation, persistence of
statistics through the artifact store, and ``explain(analyze=True)``).
"""

from __future__ import annotations

import os

import pytest

from repro.engine import Dataspace
from repro.engine.planner import (
    COST_MARGIN,
    CostModel,
    PlanLatency,
    QueryPlanner,
    QueryStatistics,
    StatisticsCollector,
    canonical_text,
    default_service_workers,
    normalize_query_text,
    recommend_scatter_workers,
    scatter_plan_key,
)
from repro.query.parser import parse_twig
from repro.store import ArtifactStore, MemoryBlockStore

ICN_QUERY = "//INVOICE_PARTY//CONTACT_NAME"


@pytest.fixture()
def figure_session(figure_mappings, figure_document):
    return Dataspace.from_mapping_set(
        figure_mappings, document=figure_document, tau=0.4, name="planner"
    )


class _FakeKernels:
    def __init__(self, name):
        self.name = name


# --------------------------------------------------------------------------- #
# Canonical query rendering
# --------------------------------------------------------------------------- #
class TestNormalization:
    @pytest.mark.parametrize(
        ("variant", "canonical"),
        [
            ("ORDER / INVOICE_PARTY", "ORDER/INVOICE_PARTY"),
            ("ORDER//  CONTACT_NAME", "ORDER//CONTACT_NAME"),
            ("//  CONTACT_NAME", "//CONTACT_NAME"),
            # Predicate order is sorted.
            (
                "ORDER[./SUPPLIER_PARTY][./INVOICE_PARTY]",
                "ORDER[./INVOICE_PARTY][./SUPPLIER_PARTY]",
            ),
            # A path continuation inside a predicate is the same tree as an
            # explicit nesting, so both render as the nested form.
            (
                "ORDER[./INVOICE_PARTY/CONTACT_NAME]",
                "ORDER[./INVOICE_PARTY[./CONTACT_NAME]]",
            ),
            ("//CONTACT_NAME[.='Bob']", '//CONTACT_NAME[.="Bob"]'),
        ],
    )
    def test_equivalent_spellings_share_canonical_text(self, variant, canonical):
        assert normalize_query_text(variant) == canonical

    @pytest.mark.parametrize(
        "text",
        [
            "ORDER/INVOICE_PARTY",
            "//CONTACT_NAME",
            "ORDER[./INVOICE_PARTY[./CONTACT_NAME]][./SUPPLIER_PARTY]",
            'ORDER[.//CONTACT_NAME[.="Bob"]]/INVOICE_PARTY',
        ],
    )
    def test_rendering_is_idempotent(self, text):
        once = normalize_query_text(text)
        assert normalize_query_text(once) == once

    def test_aliases_expand_before_rendering(self):
        assert (
            normalize_query_text("//ICN", aliases={"ICN": "CONTACT_NAME"})
            == "//CONTACT_NAME"
        )

    def test_canonical_text_matches_parse_then_render(self):
        twig = parse_twig("ORDER[./SUPPLIER_PARTY][./INVOICE_PARTY]")
        assert canonical_text(twig) == "ORDER[./INVOICE_PARTY][./SUPPLIER_PARTY]"

    def test_equivalent_texts_share_one_prepared_query(self, figure_session):
        a = figure_session.prepare("ORDER[./SUPPLIER_PARTY][./INVOICE_PARTY]")
        b = figure_session.prepare("ORDER[./INVOICE_PARTY][./SUPPLIER_PARTY]")
        c = figure_session.prepare("ORDER [./INVOICE_PARTY] [./SUPPLIER_PARTY]")
        assert a is b
        assert a is c
        assert a.cache_key == "ORDER[./INVOICE_PARTY][./SUPPLIER_PARTY]"

    def test_equivalent_texts_share_one_statistics_record(self, figure_session):
        figure_session.execute("ORDER[./SUPPLIER_PARTY][./INVOICE_PARTY]", use_cache=False)
        figure_session.execute("ORDER[./INVOICE_PARTY][./SUPPLIER_PARTY]", use_cache=False)
        stats = figure_session.planner.statistics(
            "ORDER[./INVOICE_PARTY][./SUPPLIER_PARTY]"
        )
        assert stats is not None
        assert stats.executions == 2


# --------------------------------------------------------------------------- #
# Statistics accounting and serialization
# --------------------------------------------------------------------------- #
class TestPlanLatency:
    def test_first_observation_is_structural(self):
        latency = PlanLatency()
        assert latency.observe(10.0) is True
        assert latency.count == 1
        assert latency.ewma_ms == latency.best_ms == latency.last_ms == 10.0

    def test_small_moves_are_not_structural(self):
        latency = PlanLatency()
        latency.observe(10.0)
        assert latency.observe(10.5) is False
        assert latency.observe(1000.0) is True  # large EWMA move

    def test_payload_round_trip(self):
        latency = PlanLatency()
        for sample in (3.0, 5.0, 4.0):
            latency.observe(sample)
        assert PlanLatency.from_payload(latency.to_payload()) == latency


class TestStatisticsCollector:
    def test_execution_observations_accumulate(self):
        collector = StatisticsCollector()
        collector.observe_execution(
            "q", "compiled", 2.0, state=(0, 0), num_relevant=5, num_embeddings=2
        )
        collector.observe_cache_hit("q")
        record = collector.get("q")
        assert record.executions == 1
        assert record.cache_misses == 1
        assert record.cache_hits == 1
        assert record.cache_hit_rate() == 0.5
        assert record.num_relevant == 5
        assert record.state == (0, 0)
        assert record.plans["compiled"].count == 1

    def test_structural_updates_bump_version(self):
        collector = StatisticsCollector()
        before = collector.version
        collector.observe_execution("q", "compiled", 2.0)
        assert collector.version > before
        stable = collector.version
        collector.observe_execution("q", "compiled", 2.0)  # EWMA unchanged
        assert collector.version == stable

    def test_scatter_counters_accumulate_under_plan_key(self):
        collector = StatisticsCollector()
        collector.observe_scatter("q", 4, 1.5, state=(0, 1), fan_out=3, skipped=1)
        record = collector.get("q")
        assert record.scatter[4] == {"executions": 1, "fan_out": 3, "skipped": 1}
        assert record.plans[scatter_plan_key(4)].count == 1

    def test_topk_threshold_is_state_scoped(self):
        collector = StatisticsCollector()
        collector.record_topk_threshold("q", 3, "state-a", 0.25)
        assert collector.topk_seed("q", 3, "state-a") == 0.25
        assert collector.topk_seed("q", 3, "state-b") is None
        assert collector.topk_seed("q", 4, "state-a") is None
        assert collector.topk_seed("other", 3, "state-a") is None

    def test_payload_round_trip_preserves_records(self):
        collector = StatisticsCollector()
        collector.observe_execution(
            "q1", "compiled", 2.0, state=(1, 2), num_relevant=7, num_embeddings=3
        )
        collector.observe_execution("q1", "basic", 0.5)
        collector.observe_scatter("q1", 2, 1.0, fan_out=2)
        collector.record_topk_threshold("q1", 5, "s", 0.125)
        collector.observe_cache_hit("q2")
        payload = collector.to_payload({"generation": 1})
        assert payload["format"] == 1
        assert payload["signature"] == {"generation": 1}

        adopted = StatisticsCollector()
        assert adopted.adopt_payload(payload) == 2
        restored = adopted.get("q1")
        assert restored.to_payload() == collector.get("q1").to_payload()
        assert adopted.topk_seed("q1", 5, "s") == 0.125

    def test_empty_collector_serializes_to_none(self):
        assert StatisticsCollector().to_payload() is None

    def test_unknown_format_is_ignored(self):
        collector = StatisticsCollector()
        assert collector.adopt_payload({"format": 999, "queries": [{"key": "q"}]}) == 0
        assert collector.adopt_payload(None) == 0
        assert len(collector) == 0


# --------------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------------- #
def _stats_with(plans: dict, key: str = "q") -> QueryStatistics:
    record = QueryStatistics(key=key)
    for name, samples in plans.items():
        for sample in samples:
            record.plans.setdefault(name, PlanLatency()).observe(sample)
        if name.startswith("scatter:"):
            record.scatter.setdefault(int(name.split(":")[1]), {"executions": len(samples)})
    return record


class TestCostModel:
    def test_margin_below_one_rejected(self):
        with pytest.raises(ValueError):
            CostModel(margin=0.9)

    def test_no_statistics_keeps_default(self):
        decision = CostModel().decide(None)
        assert decision.plan_name == "compiled"
        assert decision.executor == "inline"
        assert "no statistics" in decision.reason

    def test_unmeasured_default_is_never_deviated_from(self):
        stats = _stats_with({"basic": [0.1]})
        decision = CostModel().decide(stats)
        assert decision.plan_name == "compiled"
        assert "not yet measured" in decision.reason
        assert [est.plan for est in decision.candidates] == ["basic"]

    def test_measured_faster_challenger_wins(self):
        stats = _stats_with({"compiled": [10.0, 10.0], "basic": [1.0, 1.0]})
        decision = CostModel().decide(stats)
        assert decision.plan_name == "basic"
        assert decision.executor == "inline"
        assert "cost model" in decision.reason
        assert decision.statistics["plans"]["basic"]["count"] == 2

    def test_challenger_within_margin_keeps_default(self):
        stats = _stats_with({"compiled": [1.0], "basic": [1.0 / COST_MARGIN * 1.001]})
        decision = CostModel().decide(stats)
        assert decision.plan_name == "compiled"
        assert "margin" in decision.reason

    def test_default_fastest_stays_default(self):
        stats = _stats_with({"compiled": [1.0], "blocktree": [5.0]})
        decision = CostModel().decide(stats)
        assert decision.plan_name == "compiled"
        assert "fastest" in decision.reason

    def test_scatter_candidate_needs_opt_in(self):
        stats = _stats_with({"compiled": [10.0], "scatter:4": [1.0]})
        inline_only = CostModel().decide(stats)
        assert inline_only.plan_name == "compiled"
        scattered = CostModel().decide(stats, allow_scatter=True)
        assert scattered.executor == "scatter"
        assert scattered.plan_name == "scatter:4"
        assert scattered.num_shards == 4

    def test_candidates_ranked_by_cost(self):
        stats = _stats_with(
            {"compiled": [2.0], "basic": [8.0], "blocktree": [4.0]}
        )
        decision = CostModel().decide(stats)
        assert [est.plan for est in decision.candidates] == [
            "compiled",
            "blocktree",
            "basic",
        ]


class TestWorkerSizing:
    def test_python_backend_keeps_gil_bound_sizing(self):
        kernels = _FakeKernels("python")
        assert recommend_scatter_workers(4, kernels) == 4
        assert recommend_scatter_workers(1, kernels) == 2
        assert recommend_scatter_workers(100, kernels) == 8
        assert default_service_workers(kernels) == 8
        assert default_service_workers(None) == 8

    def test_numpy_backend_scales_with_cores(self):
        kernels = _FakeKernels("numpy")
        cpus = os.cpu_count() or 2
        assert recommend_scatter_workers(4, kernels) == max(2, min(32, 5, 2 * cpus))
        assert recommend_scatter_workers(100, kernels) <= 32
        assert default_service_workers(kernels) == max(8, min(32, 4 * cpus))


# --------------------------------------------------------------------------- #
# Planner facade: decision caching and invalidation
# --------------------------------------------------------------------------- #
class TestQueryPlanner:
    def test_decisions_are_cached_per_state(self):
        planner = QueryPlanner()
        first = planner.decide("q", state=(0, 0))
        again = planner.decide("q", state=(0, 0))
        assert not first.cached
        assert again.cached
        other_state = planner.decide("q", state=(0, 1))
        assert not other_state.cached

    def test_structural_observation_retires_cached_decisions(self):
        planner = QueryPlanner()
        planner.decide("q", state=(0, 0))
        planner.observe_execution("q", "compiled", 5.0)  # bumps collector version
        fresh = planner.decide("q", state=(0, 0))
        assert not fresh.cached

    def test_adopting_a_payload_clears_the_decision_cache(self):
        donor = QueryPlanner()
        donor.observe_execution("q", "compiled", 5.0)
        donor.observe_execution("q", "basic", 0.5)
        planner = QueryPlanner()
        planner.decide("q", state=(0, 0))
        assert planner.adopt_payload(donor.statistics_payload()) == 1
        decision = planner.decide("q", state=(0, 0))
        assert not decision.cached
        assert decision.plan_name == "basic"

    def test_report_shape(self):
        planner = QueryPlanner()
        planner.decide("q")
        report = planner.report()
        assert report["cached_decisions"] == 1
        assert report["margin"] == COST_MARGIN


# --------------------------------------------------------------------------- #
# Engine integration: persistence, calibration, explain(analyze=True)
# --------------------------------------------------------------------------- #
class TestEngineIntegration:
    def test_statistics_persist_and_reopen(self, figure_session):
        for _ in range(3):
            figure_session.execute(ICN_QUERY, use_cache=False)
        store = ArtifactStore(MemoryBlockStore())
        ref = figure_session.persist(store)["ref"]

        reopened = Dataspace.from_store(store, ref)
        stats = reopened.planner.statistics(ICN_QUERY)
        assert stats is not None
        assert stats.executions == 3
        assert stats.plans["compiled"].count == 3
        assert (
            stats.to_payload()
            == figure_session.planner.statistics(ICN_QUERY).to_payload()
        )

    def test_calibrate_measures_every_plan(self, figure_session):
        timings = figure_session.calibrate(ICN_QUERY, shard_counts=(2,))
        assert set(timings) == {"basic", "blocktree", "compiled", "scatter:2"}
        assert all(latency >= 0.0 for latency in timings.values())
        stats = figure_session.planner.statistics(ICN_QUERY)
        assert stats.plans["compiled"].count >= 1
        assert stats.plans["scatter:2"].count >= 1

    def test_cost_based_choice_is_byte_identical(self, figure_session):
        fixed = figure_session.execute(ICN_QUERY, plan="compiled", use_cache=False)
        figure_session.calibrate(ICN_QUERY, shard_counts=(2,))
        routed = figure_session.execute(ICN_QUERY, use_cache=False)
        assert [
            (a.mapping_id, a.matches, a.probability.hex()) for a in fixed
        ] == [(a.mapping_id, a.matches, a.probability.hex()) for a in routed]

    def test_explain_reports_planner_decision(self, figure_session):
        report = figure_session.explain(ICN_QUERY)
        payload = report.to_dict()
        assert payload["planner"]["winner"] == "compiled"
        assert "no statistics" in payload["planner"]["reason"]
        assert "planner:" in report.format()

        figure_session.calibrate(ICN_QUERY)
        measured = figure_session.explain(ICN_QUERY).to_dict()["planner"]
        assert measured["candidates"], "calibrated query must surface estimates"
        assert {est["plan"] for est in measured["candidates"]} >= {
            "basic",
            "blocktree",
            "compiled",
        }

    def test_explain_analyze_reports_estimated_vs_actual(self, figure_session):
        figure_session.execute(ICN_QUERY, use_cache=False)
        report = figure_session.explain(ICN_QUERY, analyze=True)
        analyze = report.to_dict()["analyze"]
        assert analyze["actual"]["num_relevant"] == 5
        assert analyze["estimated"]["num_relevant"] == 5
        assert analyze["actual"]["evaluate_ms"] >= 0.0
        assert "analyze:" in report.format()
        assert figure_session.explain(ICN_QUERY).to_dict()["analyze"] is None

    def test_forced_plan_bypasses_the_cost_model(self, figure_session):
        report = figure_session.explain(ICN_QUERY, plan="basic")
        assert report.plan == "basic"
        assert report.reason == "forced by caller"

    def test_describe_includes_planner_summary(self, figure_session):
        figure_session.execute(ICN_QUERY, use_cache=False)
        info = figure_session.describe()
        assert info["planner"]["tracked_queries"] == 1
