"""Tests for deterministic seeding helpers."""

from __future__ import annotations

from repro._rng import DEFAULT_SEED, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_different_purposes_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_bases_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        for purpose in ("x", "y", "schema:xcbl", ""):
            seed = derive_seed(123456789, purpose)
            assert 0 <= seed < 2**63

    def test_stable_value(self):
        # Regression guard: the derivation must not change between releases,
        # or every generated dataset silently changes.
        assert derive_seed(0, "probe") == derive_seed(0, "probe")
        assert isinstance(derive_seed(0, "probe"), int)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7, "stream")
        b = make_rng(7, "stream")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_purpose_different_stream(self):
        a = make_rng(7, "stream-a")
        b = make_rng(7, "stream-b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_none_uses_default_seed(self):
        a = make_rng(None, "stream")
        b = make_rng(DEFAULT_SEED, "stream")
        assert a.random() == b.random()
