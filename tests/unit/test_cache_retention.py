"""ResultCache delta-retention semantics (CacheKey.delta_epoch + retain()).

Three behaviours are pinned here, straight from the issue's contract:

* entries whose guard masks do **not** intersect a delta's dirty masks
  survive the epoch boundary (promoted on the first post-delta miss);
* entries whose guards **do** intersect die (the retain check refuses);
* entries never cross a ``delta_epoch`` boundary after a full
  ``invalidate()`` — a generation bump makes every older entry unreachable
  no matter how clean the delta log looks.
"""

from __future__ import annotations

import pytest

from repro.engine import CacheKey, Dataspace, MappingDelta, ResultCache


def key_at(epoch, **overrides):
    fields = dict(
        query="Q7",
        plan="compiled",
        k=None,
        tau=0.2,
        generation=0,
        document_version=0,
        delta_epoch=epoch,
    )
    fields.update(overrides)
    return CacheKey(**fields)


class TestRetainPrimitive:
    def test_non_intersecting_entry_survives(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        cache.record_delta(1, probability_mask=0b1000, target_mask=1 << 5)
        # Entry depends on mappings {0,1} and targets {2}: disjoint from the dirt.
        assert cache.retain(key_at(1), 0b0011, 1 << 2) == "value"
        assert cache.stats().retained == 1

    def test_promotion_rekeys_the_entry(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        cache.record_delta(1, 0b1000, 0)
        assert cache.retain(key_at(1), 0b0011, 0) == "value"
        assert cache.peek(key_at(0)) is None  # old key removed
        assert cache.get(key_at(1)) == "value"  # plain hit from now on

    def test_intersecting_probability_mask_dies(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        cache.record_delta(1, probability_mask=0b0010, target_mask=0)
        assert cache.retain(key_at(1), 0b0011, 0) is None
        assert cache.peek(key_at(0)) == "value"  # not promoted, still at old epoch

    def test_intersecting_target_mask_dies(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        cache.record_delta(1, probability_mask=0, target_mask=1 << 4)
        # Probability dirt is empty, but the delta edited a target element
        # the query requires — relevance or rewrites could have changed.
        assert cache.retain(key_at(1), 0b0011, (1 << 4) | (1 << 9)) is None

    def test_probability_insensitive_skips_the_mapping_check(self):
        cache = ResultCache(8)
        cache.put(key_at(0, scope="shard", shard=0, shards=4), "partial")
        # A pure reweight: probability-dirty, structurally clean.
        cache.record_delta(1, probability_mask=0b0011, target_mask=0)
        key = key_at(1, scope="shard", shard=0, shards=4)
        assert cache.retain(key, 0b0011, 0) is None  # probability-sensitive: dies
        cache.put(key_at(0, scope="shard", shard=1, shards=4), "partial-1")
        assert (
            cache.retain(
                key_at(1, scope="shard", shard=1, shards=4),
                0b0011,
                0,
                probability_sensitive=False,
            )
            == "partial-1"
        )

    def test_insensitive_still_dies_on_target_dirt(self):
        cache = ResultCache(8)
        cache.put(key_at(0, scope="shard", shard=0, shards=4), "partial")
        cache.record_delta(1, probability_mask=0, target_mask=1 << 3)
        assert (
            cache.retain(
                key_at(1, scope="shard", shard=0, shards=4),
                0,
                1 << 3,
                probability_sensitive=False,
            )
            is None
        )

    def test_multi_epoch_walk_accumulates_dirt(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        cache.record_delta(1, 0b0100, 0)
        cache.record_delta(2, 0b1000, 0)
        cache.record_delta(3, 0b10000, 0)
        # Three clean transitions: the epoch-0 entry survives to epoch 3.
        assert cache.retain(key_at(3), 0b0011, 0) == "value"

    def test_multi_epoch_walk_stops_on_dirty_transition(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        cache.record_delta(1, 0b0100, 0)
        cache.record_delta(2, 0b0001, 0)  # touches mapping 0
        cache.record_delta(3, 0b1000, 0)
        assert cache.retain(key_at(3), 0b0011, 0) is None

    def test_unknown_transition_is_conservative(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        # No record_delta call for epoch 1: nothing can be proven.
        assert cache.retain(key_at(1), 0, 0) is None

    def test_disabled_cache_never_retains(self):
        cache = ResultCache(0)
        cache.record_delta(1, 0, 0)
        assert cache.retain(key_at(1), 0, 0) is None

    def test_epoch_zero_or_non_int_never_retains(self):
        cache = ResultCache(8)
        cache.put(key_at(0), "value")
        assert cache.retain(key_at(0), 0, 0) is None
        assert cache.retain(key_at(None), 0, 0) is None

    def test_clear_drops_the_delta_log(self):
        cache = ResultCache(8)
        cache.record_delta(1, 0, 0)
        cache.put(key_at(0), "value")
        cache.clear()
        cache.put(key_at(0), "value")
        assert cache.retain(key_at(1), 0, 0) is None


class TestEngineRetention:
    """End-to-end: cached results surviving (or dying on) real deltas.

    The Figure 1 scenario gives asymmetric relevance:
    ``ORDER/SUPPLIER_PARTY`` is relevant only to mapping 2 (the only mapping
    with a ``BP -> T_SP`` correspondence), while ``//CONTACT_NAME`` is
    relevant to all five mappings.
    """

    @pytest.fixture()
    def session(self, figure_mappings, figure_document):
        return Dataspace.from_mapping_set(figure_mappings, document=figure_document)

    def swap(self, figure_mappings, a, b):
        return MappingDelta.build(
            reweight={
                a: figure_mappings[b].probability,
                b: figure_mappings[a].probability,
            }
        )

    def test_entry_survives_non_intersecting_delta(self, session, figure_mappings):
        warm = session.execute("ORDER/SUPPLIER_PARTY")
        session.apply_delta(self.swap(figure_mappings, 0, 3))  # mapping 2 untouched
        served = session.execute("ORDER/SUPPLIER_PARTY")
        assert served is warm  # the very same cached object, across the epoch
        assert session.result_cache.stats().retained == 1
        assert session.explain("ORDER/SUPPLIER_PARTY").cache == "hit"

    def test_entry_dies_on_intersecting_delta(self, session, figure_mappings):
        warm = session.execute("ORDER/SUPPLIER_PARTY")
        session.apply_delta(self.swap(figure_mappings, 0, 2))  # touches mapping 2
        served = session.execute("ORDER/SUPPLIER_PARTY")
        assert served is not warm
        assert {a.probability for a in served} != {a.probability for a in warm}
        assert session.result_cache.stats().retained == 0

    def test_structural_delta_outside_query_targets_survives(
        self, session, figure_mappings, figure_elements
    ):
        e = figure_elements
        warm = session.execute("ORDER/SUPPLIER_PARTY")
        # Retract a CONTACT_NAME correspondence of mapping 0: dirty targets
        # {ICN}, dirty mappings {0} — both disjoint from this query.
        session.apply_delta(
            MappingDelta.build(remove=[(0, (e["BCN"], e["ICN"]))])
        )
        assert session.execute("ORDER/SUPPLIER_PARTY") is warm

    def test_structural_delta_on_relevant_mapping_outside_targets_survives(
        self, session, figure_mappings, figure_elements
    ):
        e = figure_elements
        warm = session.execute("ORDER/SUPPLIER_PARTY")  # relevant = {mapping 2}
        # Retract mapping 2's CONTACT_NAME pair: the mapping is relevant, but
        # the edit touches only target ICN — coverage, rewrite and
        # probability at this query's targets (ORDER, T_SP) are untouched,
        # so the entry provably survives.
        session.apply_delta(
            MappingDelta.build(remove=[(2, (e["RCN"], e["ICN"]))])
        )
        assert session.execute("ORDER/SUPPLIER_PARTY") is warm
        # And the retained answer is still what a cold evaluation computes.
        cold = session.execute("ORDER/SUPPLIER_PARTY", use_cache=False)
        assert {(a.mapping_id, a.matches, a.probability) for a in warm} == {
            (a.mapping_id, a.matches, a.probability) for a in cold
        }

    def test_structural_delta_on_query_targets_dies(
        self, session, figure_mappings, figure_elements
    ):
        e = figure_elements
        warm = session.execute("//CONTACT_NAME")
        session.apply_delta(
            MappingDelta.build(remove=[(0, (e["BCN"], e["ICN"]))])
        )
        served = session.execute("//CONTACT_NAME")
        assert served is not warm

    def test_explain_reports_retained(self, session, figure_mappings):
        session.execute("ORDER/SUPPLIER_PARTY")
        session.apply_delta(self.swap(figure_mappings, 0, 3))
        report = session.explain("ORDER/SUPPLIER_PARTY")
        # explain() runs after execute() already promoted the entry in the
        # line above?  No — this is the first post-delta lookup.
        assert report.cache == "retained"
        assert report.cache_stats["retained"] == 1

    def test_never_crosses_full_invalidate(self, session, figure_mappings):
        warm = session.execute("ORDER/SUPPLIER_PARTY")
        session.invalidate()  # generation bump: every old entry unreachable
        session.apply_delta(self.swap(figure_mappings, 0, 3))
        served = session.execute("ORDER/SUPPLIER_PARTY")
        assert served is not warm
        assert session.result_cache.stats().retained == 0

    def test_chained_deltas_accumulate(self, session, figure_mappings):
        warm = session.execute("ORDER/SUPPLIER_PARTY")
        session.apply_delta(self.swap(figure_mappings, 0, 3))
        session.apply_delta(self.swap(figure_mappings, 1, 4))
        assert session.execute("ORDER/SUPPLIER_PARTY") is warm  # both clean
        session.apply_delta(
            MappingDelta.build(
                reweight={
                    2: session.mapping_set[0].probability,
                    0: session.mapping_set[2].probability,
                }
            )
        )
        assert session.execute("ORDER/SUPPLIER_PARTY") is not warm


class TestMultiDatasetTopKInvalidation:
    """Top-k partials depend on the *global* selection across sessions.

    ``_select()`` pools and thresholds probabilities across every member
    session, so a top-k partial of session B must be retired when session A
    changes — even though B's own state never moved.  Regression test for a
    staleness bug where per-session partial keys let a cached D3 partial
    (computed under the old global selection) serve after a delta to D2.
    """

    def test_topk_cached_equals_uncached_after_other_session_delta(self):
        from repro.corpus import ShardedCorpus

        corpus = ShardedCorpus.from_datasets(["D2", "D3"], shards_per_dataset=2, h=12)
        session_a = corpus.sessions[0]
        all_ids = list(range(12))

        def concentrate(session, ids):
            # Move the subset's whole mass onto its first member: changes the
            # probability *multiset*, so the global top-k split shifts.
            mapping_set = session.mapping_set
            mass = sum(mapping_set[i].probability for i in ids)
            reweight = {ids[0]: mass}
            reweight.update({i: 0.0 for i in ids[1:]})
            return MappingDelta.build(reweight=reweight)

        def flatten(session, ids):
            mapping_set = session.mapping_set
            mass = sum(mapping_set[i].probability for i in ids)
            return MappingDelta.build(
                reweight={i: mass / len(ids) for i in ids}
            )

        def answers(use_cache):
            return tuple(
                (a.dataset, a.mapping_id, a.probability, a.matches)
                for a in corpus.top_k("//ContactName", 5, use_cache=use_cache)
            )

        # Warm the top-k partials under the initial global selection, then
        # reshape session A's probability distribution so the number of
        # slots each session gets in the global top-5 changes — session B's
        # own state never moves, but its cached partials must still retire.
        assert answers(True) == answers(False)
        corpus.apply_delta(concentrate(session_a, all_ids), dataset="D2")
        assert answers(True) == answers(False)
        corpus.apply_delta(flatten(session_a, all_ids), dataset="D2")
        assert answers(True) == answers(False)

    def test_full_partials_stay_per_session_scoped(self):
        from repro.corpus import ShardedCorpus

        corpus = ShardedCorpus.from_datasets(["D2", "D3"], shards_per_dataset=2, h=8)
        session_a, session_b = corpus.sessions
        corpus.gather("//ContactName")  # warm k=None partials for both
        hits_before = session_b.result_cache.stats().hits
        # A delta to session A must not retire session B's full partials:
        # k=None selection is per-session, so B's keys are untouched.
        mapping_set = session_a.mapping_set
        corpus.apply_delta(
            MappingDelta.build(
                reweight={
                    0: mapping_set[7].probability,
                    7: mapping_set[0].probability,
                }
            ),
            dataset="D2",
        )
        execution = corpus.gather("//ContactName")
        b_reports = [
            r for r in execution.shard_reports if r.dataset == "D3" and r.shard_id >= 0
        ]
        assert any(r.status == "cached" for r in b_reports)
        assert session_b.result_cache.stats().hits > hits_before
        # And the merged outcome still matches a cache-free evaluation.
        fresh = corpus.gather("//ContactName", use_cache=False)
        for name in ("D2", "D3"):
            assert {
                (a.mapping_id, a.matches, a.probability)
                for a in execution.results[name]
            } == {
                (a.mapping_id, a.matches, a.probability) for a in fresh.results[name]
            }


class TestCorpusRetention:
    def test_clean_shards_retained_after_delta(self, figure_mappings, figure_document):
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        corpus = session.shard(2)
        corpus.execute("ORDER/SUPPLIER_PARTY")  # warm merged result + partials
        delta = MappingDelta.build(
            reweight={
                0: figure_mappings[3].probability,
                3: figure_mappings[0].probability,
            }
        )
        corpus.apply_delta(delta)
        execution = corpus.explain("ORDER/SUPPLIER_PARTY")
        # The merged result survived the delta outright.
        assert execution.cache == "retained"

    def test_dirty_merged_result_reevaluates_but_partials_retain(
        self, figure_mappings, figure_document
    ):
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        corpus = session.shard(2)
        before = corpus.explain("//CONTACT_NAME")  # all mappings relevant
        delta = MappingDelta.build(
            reweight={
                0: figure_mappings[3].probability,
                3: figure_mappings[0].probability,
            }
        )
        corpus.apply_delta(delta)
        execution = corpus.explain("//CONTACT_NAME")
        # A reweight invalidates the merged (probability-carrying) result...
        assert execution.cache == "miss"
        # ...but the per-shard match partials are structurally clean: every
        # shard that evaluated before is served as "retained" now.
        evaluated_before = sum(
            1 for r in before.shard_reports if r.status in ("evaluated", "spine")
        )
        assert execution.retained_shards == evaluated_before
        assert execution.fan_out == len(execution.shard_reports)
        unsharded = session.execute("//CONTACT_NAME", use_cache=False)
        assert {(a.mapping_id, a.matches, a.probability) for a in execution.result} == {
            (a.mapping_id, a.matches, a.probability) for a in unsharded
        }
