"""Tests for blocks, c-blocks and block-tree construction (Section III)."""

from __future__ import annotations

import pytest

from repro.core.block import Block
from repro.core.blocktree import BlockTree, BlockTreeConfig, build_block_tree
from repro.exceptions import BlockTreeError
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet


class TestBlock:
    def test_properties(self):
        block = Block(anchor_id=2, correspondences=frozenset({(5, 2)}), mapping_ids=frozenset({0, 1}))
        assert block.size == 1
        assert block.support == 2
        assert block.covered_target_ids() == {2}
        assert block.source_for_target(2) == 5
        assert block.source_for_target(7) is None

    def test_requires_anchor_correspondence(self):
        with pytest.raises(BlockTreeError):
            Block(anchor_id=9, correspondences=frozenset({(5, 2)}), mapping_ids=frozenset({0}))

    def test_requires_nonempty_sets(self):
        with pytest.raises(BlockTreeError):
            Block(anchor_id=2, correspondences=frozenset(), mapping_ids=frozenset({0}))
        with pytest.raises(BlockTreeError):
            Block(anchor_id=2, correspondences=frozenset({(5, 2)}), mapping_ids=frozenset())

    def test_negative_anchor_rejected(self):
        with pytest.raises(BlockTreeError):
            Block(anchor_id=-1, correspondences=frozenset({(5, -1)}), mapping_ids=frozenset({0}))


class TestBlockTreeConfig:
    def test_defaults_are_paper_defaults(self):
        config = BlockTreeConfig()
        assert config.tau == 0.2
        assert config.max_blocks == 500
        assert config.max_failures == 500

    def test_tau_bounds(self):
        with pytest.raises(BlockTreeError):
            BlockTreeConfig(tau=0.0)
        with pytest.raises(BlockTreeError):
            BlockTreeConfig(tau=1.5)

    def test_budgets_non_negative(self):
        with pytest.raises(BlockTreeError):
            BlockTreeConfig(max_blocks=-1)


class TestFigureBlockTree:
    """Construction over the paper's running example (Figures 3-5)."""

    def test_structure_mirrors_target_schema(self, figure_block_tree, target_schema):
        assert figure_block_tree.root is not None
        assert figure_block_tree.root.path == "ORDER"
        for element in target_schema.iter_preorder():
            node = figure_block_tree.node_for_element(element.element_id)
            assert node.path == element.path

    def test_icn_leaf_blocks_match_figure4(self, figure_block_tree, figure_elements):
        # With tau=0.4 and |M|=5 the support threshold is 2 mappings, so only
        # (BCN~ICN) [m1, m2] and (RCN~ICN) [m3, m4] form c-blocks; (OCN~ICN)
        # is shared by m5 alone and is pruned (Figure 4a).
        blocks = figure_block_tree.blocks_at(figure_elements["ICN"])
        assert len(blocks) == 2
        by_source = {block.source_for_target(figure_elements["ICN"]): block for block in blocks}
        assert set(by_source) == {figure_elements["BCN"], figure_elements["RCN"]}
        assert by_source[figure_elements["BCN"]].mapping_ids == frozenset({0, 1})
        assert by_source[figure_elements["RCN"]].mapping_ids == frozenset({2, 3})

    def test_ip_non_leaf_block_matches_figure5(self, figure_block_tree, figure_elements):
        # Figure 5's b5: {(BP, IP), (BCN, ICN)} shared by m1 and m2.
        blocks = figure_block_tree.blocks_at(figure_elements["T_IP"])
        assert len(blocks) == 1
        block = blocks[0]
        assert block.correspondences == frozenset(
            {
                (figure_elements["BP"], figure_elements["T_IP"]),
                (figure_elements["BCN"], figure_elements["ICN"]),
            }
        )
        assert block.mapping_ids == frozenset({0, 1})

    def test_scn_leaf_blocks(self, figure_block_tree, figure_elements):
        blocks = figure_block_tree.blocks_at(figure_elements["SCN"])
        sources = {block.source_for_target(figure_elements["SCN"]) for block in blocks}
        assert sources == {figure_elements["OCN"], figure_elements["BCN"]}

    def test_root_has_no_cblock(self, figure_block_tree, figure_elements):
        # ORDER's own correspondence is shared by all mappings, but no single
        # combination of child blocks is shared by >= 2 mappings together
        # with both children, as in Figure 5 where g3 is discarded.
        assert figure_block_tree.blocks_at(figure_elements["ORDER"]) == []

    def test_hash_table_contains_block_nodes_only(self, figure_block_tree):
        for path, node in figure_block_tree.hash_table.items():
            assert node.has_blocks
            assert node.path == path
        assert "ORDER" not in figure_block_tree.hash_table
        assert "ORDER.INVOICE_PARTY" in figure_block_tree.hash_table

    def test_node_for_path_uses_hash_table(self, figure_block_tree):
        assert figure_block_tree.node_for_path("ORDER.INVOICE_PARTY") is not None
        assert figure_block_tree.node_for_path("ORDER") is None
        assert figure_block_tree.node_for_path("DOES.NOT.EXIST") is None

    def test_every_block_satisfies_cblock_definition(self, figure_block_tree, figure_mappings, target_schema):
        min_support = figure_block_tree.config.tau * len(figure_mappings)
        for block in figure_block_tree.iter_blocks():
            anchor = target_schema.get(block.anchor_id)
            subtree_ids = {element.element_id for element in anchor.iter_subtree()}
            # one correspondence per subtree element, and nothing else
            assert block.covered_target_ids() == subtree_ids
            assert block.size == len(subtree_ids)
            # enough support, and every mapping really contains b.C
            assert block.support >= min_support
            for mapping_id in block.mapping_ids:
                assert block.correspondences <= figure_mappings[mapping_id].correspondences

    def test_num_blocks(self, figure_block_tree):
        assert figure_block_tree.num_blocks == 5

    def test_compression_ratio_in_range(self, figure_block_tree):
        ratio = figure_block_tree.compression_ratio()
        assert -1.0 < ratio < 1.0

    def test_residual_correspondences(self, figure_block_tree, figure_mappings):
        for mapping in figure_mappings:
            residual = figure_block_tree.residual_correspondences(mapping.mapping_id)
            assert residual <= mapping.correspondences
        # m1 has (BP~IP) and (BCN~ICN) covered by blocks; Order~ORDER and
        # RCN~SCN are not covered (the latter's block was pruned at tau=0.4).
        m1_residual = figure_block_tree.residual_correspondences(0)
        assert len(m1_residual) == 2

    def test_describe_keys(self, figure_block_tree):
        info = figure_block_tree.describe()
        assert info["num_blocks"] == 5
        assert "compression_ratio" in info
        assert "construction_seconds" in info

    def test_membership_index_built_once_and_consistent(self, figure_block_tree, figure_mappings):
        tree = figure_block_tree
        index = tree._membership_index()
        assert tree._membership_index() is index  # cached, not recomputed
        assert tree.all_blocks() is tree.all_blocks()
        for mapping in figure_mappings:
            count, covered = index[mapping.mapping_id]
            # Recompute by brute force over the blocks.
            brute_count = sum(
                1 for block in tree.iter_blocks() if mapping.mapping_id in block.mapping_ids
            )
            brute_covered = set()
            for block in tree.iter_blocks():
                if mapping.mapping_id in block.mapping_ids:
                    brute_covered.update(block.correspondences)
            assert count == brute_count
            assert covered == frozenset(brute_covered)
            assert tree.residual_correspondences(mapping.mapping_id) == frozenset(
                mapping.correspondences - brute_covered
            )


class TestTauBehaviour:
    def test_higher_tau_fewer_blocks(self, figure_mappings):
        low = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.2))
        high = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.8))
        assert high.num_blocks <= low.num_blocks

    def test_tau_one_keeps_only_universal_blocks(self, figure_mappings):
        tree = build_block_tree(figure_mappings, BlockTreeConfig(tau=1.0))
        for block in tree.iter_blocks():
            assert block.support == len(figure_mappings)

    def test_tau_very_small_has_block_per_correspondence_group(self, figure_mappings, figure_elements):
        tree = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.05))
        blocks = tree.blocks_at(figure_elements["ICN"])
        assert len(blocks) == 3  # BCN, RCN and OCN groups all survive


class TestBudgets:
    def test_max_blocks_zero_disables_non_leaf_blocks(self, figure_mappings, figure_elements):
        tree = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.4, max_blocks=0))
        assert tree.blocks_at(figure_elements["T_IP"]) == []
        assert tree.non_leaf_blocks_created == 0
        # leaf blocks are unaffected by MAX_B
        assert tree.blocks_at(figure_elements["ICN"])

    def test_max_failures_zero_limits_combinations(self, figure_mappings):
        tree = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.4, max_failures=0))
        assert tree.num_blocks >= 0  # construction still succeeds

    def test_max_blocks_caps_non_leaf_blocks(self, d7_mappings):
        capped = build_block_tree(d7_mappings, BlockTreeConfig(tau=0.02, max_blocks=5))
        assert capped.non_leaf_blocks_created <= 5


class TestCorpusBlockTree:
    def test_d7_tree_has_blocks_and_compresses(self, d7_block_tree):
        assert d7_block_tree.num_blocks > 50
        assert d7_block_tree.compression_ratio() > 0.0

    def test_d7_blocks_satisfy_definition(self, d7_block_tree, d7_mappings):
        min_support = d7_block_tree.config.tau * len(d7_mappings)
        target = d7_block_tree.target_schema
        for block in d7_block_tree.iter_blocks():
            anchor = target.get(block.anchor_id)
            assert block.covered_target_ids() == {
                element.element_id for element in anchor.iter_subtree()
            }
            assert block.support >= min_support

    def test_d7_multi_correspondence_blocks_exist(self, d7_block_tree):
        assert any(block.size > 1 for block in d7_block_tree.iter_blocks())

    def test_construction_time_recorded(self, d7_block_tree):
        assert d7_block_tree.construction_seconds > 0.0

    def test_node_for_unknown_element(self, d7_block_tree):
        with pytest.raises(BlockTreeError):
            d7_block_tree.node_for_element(10**6)
