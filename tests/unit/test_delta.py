"""Unit tests for the incremental delta-update engine (repro.engine.delta)."""

from __future__ import annotations

import pytest

from repro.engine import Dataspace, MappingDelta, apply_mapping_delta
from repro.engine.compiled import CompiledMappingSet
from repro.exceptions import CorpusError, DataspaceError, MappingError
from repro.mapping.mapping_set import MappingSet
from repro.service import QueryService


def answer_set(result):
    return {(a.mapping_id, a.matches, a.probability) for a in result}


def rebuilt_from_scratch(patched: MappingSet) -> MappingSet:
    """A reference set built the slow way from the patched mappings."""
    return MappingSet(patched.matching, patched.mappings, normalize=False)


def compiled_state(compiled: CompiledMappingSet) -> tuple:
    return (
        compiled.num_mappings,
        compiled.all_mask,
        compiled.probabilities,
        compiled._pair_masks,
        compiled._covered_masks,
        compiled._target_sources,
    )


class TestMappingDeltaRecord:
    def test_build_normalises_inputs(self):
        delta = MappingDelta.build(
            add=[(1, (2, 3))], remove=[(0, (4, 5))], reweight={2: 0.5},
            replace=[(3, [(6, 7)], 1.5)],
        )
        assert delta.add == ((1, (2, 3)),)
        assert delta.remove == ((0, (4, 5)),)
        assert delta.reweight == ((2, 0.5),)
        assert delta.replace == ((3, frozenset({(6, 7)}), 1.5),)

    def test_touched_and_structural_ids(self):
        delta = MappingDelta.build(
            add=[(1, (2, 3))], reweight={2: 0.5}, replace=[(3, [(6, 7)], 1.0)]
        )
        assert delta.touched_ids() == frozenset({1, 2, 3})
        assert delta.structural_ids() == frozenset({1, 3})

    def test_is_empty(self):
        assert MappingDelta().is_empty()
        assert not MappingDelta.build(reweight={0: 1.0}).is_empty()


class TestApplyValidation:
    def test_out_of_range_mapping_id(self, figure_mappings):
        with pytest.raises(MappingError, match="0..4"):
            apply_mapping_delta(figure_mappings, MappingDelta.build(reweight={99: 0.1}))

    def test_add_pair_not_in_matching(self, figure_mappings):
        with pytest.raises(MappingError, match="not a"):
            apply_mapping_delta(
                figure_mappings, MappingDelta.build(add=[(0, (999, 999))])
            )

    def test_add_duplicate_pair(self, figure_mappings, figure_elements):
        pair = (figure_elements["Order"], figure_elements["ORDER"])
        with pytest.raises(MappingError, match="already contains"):
            apply_mapping_delta(figure_mappings, MappingDelta.build(add=[(0, pair)]))

    def test_remove_absent_pair(self, figure_mappings, figure_elements):
        pair = (figure_elements["SP"], figure_elements["T_IP"])  # only in mapping 2
        with pytest.raises(MappingError, match="does not contain"):
            apply_mapping_delta(figure_mappings, MappingDelta.build(remove=[(0, pair)]))

    def test_reweight_twice_rejected(self, figure_mappings):
        delta = MappingDelta(reweight=((0, 0.1), (0, 0.2)))
        with pytest.raises(MappingError, match="twice"):
            apply_mapping_delta(figure_mappings, delta)

    def test_reweight_must_preserve_mass(self, figure_mappings):
        with pytest.raises(MappingError, match="preserve probability mass"):
            apply_mapping_delta(
                figure_mappings, MappingDelta.build(reweight={0: 0.9999})
            )

    def test_replace_conflicts_with_pair_edit(self, figure_mappings, figure_elements):
        e = figure_elements
        pairs = frozenset({(e["Order"], e["ORDER"])})
        delta = MappingDelta.build(
            replace=[(0, pairs, 1.0)], remove=[(0, (e["BCN"], e["ICN"]))]
        )
        with pytest.raises(MappingError, match="both replaces"):
            apply_mapping_delta(figure_mappings, delta)

    def test_replace_pair_must_exist_in_matching(self, figure_mappings):
        delta = MappingDelta.build(replace=[(0, [(999, 999)], 1.0)])
        with pytest.raises(MappingError, match="not a correspondence"):
            apply_mapping_delta(figure_mappings, delta)

    def test_add_breaking_one_target_rule_rejected(self, figure_mappings, figure_elements):
        e = figure_elements
        # Mapping 0 already maps BCN (to ICN); adding BCN->SCN maps the same
        # source twice.
        with pytest.raises(MappingError, match="more than once"):
            apply_mapping_delta(
                figure_mappings, MappingDelta.build(add=[(0, (e["BCN"], e["SCN"]))])
            )


class TestApplySemantics:
    def test_untouched_mappings_are_shared(self, figure_mappings):
        swap = {0: figure_mappings[3].probability, 3: figure_mappings[0].probability}
        patched, effect = apply_mapping_delta(
            figure_mappings, MappingDelta.build(reweight=swap)
        )
        assert patched is not figure_mappings
        for mapping_id in (1, 2, 4):
            assert patched[mapping_id] is figure_mappings[mapping_id]
        for mapping_id in (0, 3):
            assert patched[mapping_id] is not figure_mappings[mapping_id]
        assert effect.dirty_mask == (1 << 0) | (1 << 3)
        assert effect.structural_mask == 0
        assert effect.dirty_target_mask == 0

    def test_probabilities_still_sum_to_one(self, figure_mappings):
        swap = {0: figure_mappings[3].probability, 3: figure_mappings[0].probability}
        patched, _ = apply_mapping_delta(figure_mappings, MappingDelta.build(reweight=swap))
        assert sum(m.probability for m in patched) == pytest.approx(1.0)
        assert patched[0].probability == pytest.approx(figure_mappings[3].probability)

    def test_remove_adjusts_score_and_targets(self, figure_mappings, figure_elements):
        e = figure_elements
        pair = (e["RCN"], e["SCN"])  # in mapping 0, score 0.61
        patched, effect = apply_mapping_delta(
            figure_mappings, MappingDelta.build(remove=[(0, pair)])
        )
        assert pair not in patched[0].correspondences
        assert patched[0].score == pytest.approx(figure_mappings[0].score - 0.61)
        assert effect.structural_mask == 1
        assert effect.dirty_targets == frozenset({e["SCN"]})
        assert effect.dirty_target_mask == 1 << e["SCN"]

    def test_replace_inherits_slot_probability(self, figure_mappings, figure_elements):
        e = figure_elements
        new_pairs = frozenset({(e["Order"], e["ORDER"]), (e["OCN"], e["SCN"])})
        patched, effect = apply_mapping_delta(
            figure_mappings, MappingDelta.build(replace=[(4, new_pairs, 9.0)])
        )
        assert patched[4].correspondences == new_pairs
        assert patched[4].score == 9.0
        assert patched[4].probability == pytest.approx(figure_mappings[4].probability)
        # Changed targets are the symmetric difference's targets only.
        assert e["ICN"] in effect.dirty_targets  # OCN->ICN was dropped

    def test_empty_delta_is_a_noop_patch(self, figure_mappings):
        patched, effect = apply_mapping_delta(figure_mappings, MappingDelta())
        assert list(patched) == list(figure_mappings)
        assert effect.dirty_mask == 0 and effect.structural_mask == 0


class TestIncrementalCompile:
    def test_patched_compiled_equals_fresh_compile(self, figure_mappings, figure_elements):
        e = figure_elements
        figure_mappings.compile()  # make the predecessor artifact exist
        delta = MappingDelta.build(
            remove=[(0, (e["RCN"], e["SCN"]))],
            add=[(0, (e["OCN"], e["SCN"]))],
            reweight={3: figure_mappings[4].probability, 4: figure_mappings[3].probability},
        )
        patched, effect = apply_mapping_delta(figure_mappings, delta)
        assert effect.compiled_incrementally
        assert patched.is_compiled  # pre-seeded, not lazily rebuilt
        fresh = rebuilt_from_scratch(patched).compile()
        assert compiled_state(patched.compile()) == compiled_state(fresh)

    def test_uncompiled_predecessor_compiles_lazily(self, figure_mappings, figure_elements):
        e = figure_elements
        assert not figure_mappings.is_compiled
        patched, effect = apply_mapping_delta(
            figure_mappings, MappingDelta.build(remove=[(2, (e["SP"], e["T_IP"]))])
        )
        assert not effect.compiled_incrementally
        assert not patched.is_compiled
        fresh = rebuilt_from_scratch(patched).compile()
        assert compiled_state(patched.compile()) == compiled_state(fresh)

    def test_removing_last_pair_of_target_drops_columns(self, figure_mappings, figure_elements):
        e = figure_elements
        figure_mappings.compile()
        # T_SP is covered only by mapping 2's (BP, T_SP).
        patched, _ = apply_mapping_delta(
            figure_mappings, MappingDelta.build(remove=[(2, (e["BP"], e["T_SP"]))])
        )
        compiled = patched.compile()
        assert compiled.covered_mask(e["T_SP"]) == 0
        assert compiled.source_partitions(e["T_SP"]) == ()
        fresh = rebuilt_from_scratch(patched).compile()
        assert compiled_state(compiled) == compiled_state(fresh)


class TestDataspaceApplyDelta:
    def query_session(self, figure_mappings, figure_document):
        return Dataspace.from_mapping_set(figure_mappings, document=figure_document)

    def test_epoch_bumps_generation_does_not(self, figure_mappings, figure_document):
        session = self.query_session(figure_mappings, figure_document)
        swap = {0: figure_mappings[3].probability, 3: figure_mappings[0].probability}
        report = session.apply_delta(MappingDelta.build(reweight=swap))
        assert report.delta_epoch == 1
        assert session.delta_epoch == 1
        assert session.generation == 0
        assert session.describe()["delta_epoch"] == 1

    def test_results_reflect_the_delta(self, figure_mappings, figure_document):
        session = self.query_session(figure_mappings, figure_document)
        before = session.execute("//CONTACT_NAME")
        swap = {0: figure_mappings[2].probability, 2: figure_mappings[0].probability}
        session.apply_delta(MappingDelta.build(reweight=swap))
        after = session.execute("//CONTACT_NAME")
        probabilities = {a.mapping_id: a.probability for a in after}
        assert probabilities[0] == pytest.approx(figure_mappings[2].probability)
        assert probabilities[2] == pytest.approx(figure_mappings[0].probability)
        assert answer_set(before) != answer_set(after)

    def test_block_tree_rebuilt_lazily_from_patched_set(
        self, figure_mappings, figure_document, figure_elements
    ):
        e = figure_elements
        session = self.query_session(figure_mappings, figure_document)
        session.block_tree  # build the pre-delta tree
        session.apply_delta(
            MappingDelta.build(remove=[(0, (e["RCN"], e["SCN"]))])
        )
        assert session.describe()["block_tree_built"] is False
        tree_result = session.execute("//CONTACT_NAME", plan="blocktree", use_cache=False)
        compiled_result = session.execute("//CONTACT_NAME", plan="compiled", use_cache=False)
        assert answer_set(tree_result) == answer_set(compiled_result)

    def test_report_counts(self, figure_mappings, figure_document, figure_elements):
        e = figure_elements
        session = self.query_session(figure_mappings, figure_document)
        session.compiled  # compile pre-delta so the patch path runs
        report = session.apply_delta(
            MappingDelta.build(remove=[(0, (e["RCN"], e["SCN"]))])
        )
        assert report.touched_mappings == 1
        assert report.structural_mappings == 1
        assert report.posting_lists_touched == 1
        assert report.compiled_incrementally
        assert report.posting_lists_reused == (
            report.posting_lists_total - report.posting_lists_touched
        )
        payload = report.to_dict()
        assert payload["delta_epoch"] == 1
        assert "delta" in report.format()

    def test_in_flight_snapshot_unaffected(self, figure_mappings, figure_document):
        session = self.query_session(figure_mappings, figure_document)
        snapshot = session.snapshot(need_tree=False)
        swap = {0: figure_mappings[3].probability, 3: figure_mappings[0].probability}
        session.apply_delta(MappingDelta.build(reweight=swap))
        # The pre-delta snapshot still holds the pre-delta artifacts.
        assert snapshot.delta_epoch == 0
        assert snapshot.mapping_set[0].probability == pytest.approx(
            figure_mappings[0].probability
        )
        assert session.snapshot(need_tree=False).delta_epoch == 1

    def test_pinned_session_accepts_deltas(self, figure_mappings, figure_document):
        session = self.query_session(figure_mappings, figure_document)
        with pytest.raises(DataspaceError):
            session.configure(h=3)  # pinned set: configure stays rejected
        swap = {0: figure_mappings[3].probability, 3: figure_mappings[0].probability}
        session.apply_delta(MappingDelta.build(reweight=swap))  # delta is fine
        assert session.delta_epoch == 1


class TestServiceAndCorpusDelta:
    def test_service_apply_delta_routes_to_session(self, figure_mappings, figure_document):
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        swap = {0: figure_mappings[3].probability, 3: figure_mappings[0].probability}
        with QueryService(session, max_workers=2) as service:
            before = service.submit("//CONTACT_NAME").result(timeout=30)
            report = service.apply_delta(MappingDelta.build(reweight=swap))
            after = service.submit("//CONTACT_NAME").result(timeout=30)
        assert report.delta_epoch == 1
        assert {a.mapping_id: a.probability for a in after}[0] == pytest.approx(
            figure_mappings[3].probability
        )
        assert answer_set(before) != answer_set(after)

    def test_corpus_apply_delta_single_session(self, figure_mappings, figure_document):
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        corpus = session.shard(2)
        corpus.execute("//CONTACT_NAME")  # build shard state
        swap = {0: figure_mappings[3].probability, 3: figure_mappings[0].probability}
        corpus.apply_delta(MappingDelta.build(reweight=swap))
        merged = corpus.execute("//CONTACT_NAME", use_cache=False)
        unsharded = session.execute("//CONTACT_NAME", use_cache=False)
        assert answer_set(merged) == answer_set(unsharded)
        # The document did not change: the partition is reused, not re-cut.
        assert corpus.describe()["partitions_reused"] >= 1

    def test_corpus_apply_delta_needs_dataset_when_multi(self):
        from repro.corpus import ShardedCorpus

        corpus = ShardedCorpus.from_datasets(["D1", "D2"], h=5)
        with pytest.raises(CorpusError, match="dataset"):
            corpus.apply_delta(MappingDelta())
        with pytest.raises(CorpusError, match="no corpus session"):
            corpus.apply_delta(MappingDelta(), dataset="nope")
        report = corpus.apply_delta(MappingDelta(), dataset="D1")
        assert report.delta_epoch == 1
