"""Tests for PTQ evaluation (basic, block-tree and top-k) on the paper's example."""

from __future__ import annotations

import pytest

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.exceptions import QueryError
from repro.query.parser import parse_twig
from repro.query.ptq import evaluate_ptq, evaluate_ptq_basic, evaluate_ptq_blocktree, filter_mappings
from repro.query.resolve import resolve_query
from repro.query.topk import evaluate_topk_ptq


@pytest.fixture()
def icn_query():
    """The introduction's query Q = //IP//ICN, in the Figure 1(b) vocabulary."""
    return parse_twig("//INVOICE_PARTY//CONTACT_NAME")


class TestFilterMappings:
    def test_keeps_only_covering_mappings(self, figure_mappings, target_schema, icn_query):
        embeddings = resolve_query(icn_query, target_schema)
        relevant = filter_mappings(figure_mappings, embeddings)
        # Every Figure 3 mapping maps both IP and ICN, so none is filtered.
        assert len(relevant) == len(figure_mappings)

    def test_filters_non_covering(self, figure_mappings, target_schema):
        query = parse_twig("ORDER/SUPPLIER_PARTY/CONTACT_NAME")
        embeddings = resolve_query(query, target_schema)
        relevant = filter_mappings(figure_mappings, embeddings)
        # The query needs correspondences for ORDER, SUPPLIER_PARTY and SCN.
        # Only m3 (mapping_id 2) maps SUPPLIER_PARTY (via BP~SP), so every
        # other mapping is irrelevant and gets pruned.
        assert {m.mapping_id for m in relevant} == {2}

    def test_no_embeddings_means_no_mappings(self, figure_mappings):
        assert filter_mappings(figure_mappings, []) == []

    def test_accepts_plain_sequence(self, figure_mappings, target_schema, icn_query):
        embeddings = resolve_query(icn_query, target_schema)
        from_set = filter_mappings(figure_mappings, embeddings)
        from_tuple = filter_mappings(tuple(figure_mappings), embeddings)
        assert [m.mapping_id for m in from_tuple] == [m.mapping_id for m in from_set]

    def test_accepts_one_shot_iterator(self, figure_mappings, target_schema, icn_query):
        # A generator must be normalised exactly once at the boundary — the
        # relevance check probes several embeddings per mapping.
        embeddings = resolve_query(icn_query, target_schema)
        from_generator = filter_mappings(iter(list(figure_mappings)), embeddings)
        assert [m.mapping_id for m in from_generator] == [
            m.mapping_id for m in filter_mappings(figure_mappings, embeddings)
        ]

    def test_returns_fresh_list(self, figure_mappings, target_schema, icn_query):
        embeddings = resolve_query(icn_query, target_schema)
        first = filter_mappings(figure_mappings, embeddings)
        second = filter_mappings(figure_mappings, embeddings)
        assert first == second and first is not second


class TestCandidateNormalisation:
    """Downstream evaluators must not re-iterate a caller's raw iterable."""

    def test_basic_accepts_mapping_generator(
        self, figure_mappings, figure_document, icn_query
    ):
        baseline = evaluate_ptq_basic(
            icn_query, figure_mappings, figure_document, mappings=list(figure_mappings)
        )
        from_generator = evaluate_ptq_basic(
            icn_query,
            figure_mappings,
            figure_document,
            mappings=(m for m in figure_mappings),
        )
        assert {(a.mapping_id, a.matches) for a in from_generator} == {
            (a.mapping_id, a.matches) for a in baseline
        }
        assert len(from_generator) == len(figure_mappings)

    def test_blocktree_accepts_mapping_generator(
        self, figure_mappings, figure_document, figure_block_tree, icn_query
    ):
        baseline = evaluate_ptq_blocktree(
            icn_query, figure_mappings, figure_document, figure_block_tree
        )
        from_generator = evaluate_ptq_blocktree(
            icn_query,
            figure_mappings,
            figure_document,
            figure_block_tree,
            mappings=(m for m in figure_mappings),
        )
        assert {(a.mapping_id, a.matches) for a in from_generator} == {
            (a.mapping_id, a.matches) for a in baseline
        }

    def test_plan_run_accepts_relevant_generator(
        self, figure_mappings, figure_document, target_schema, icn_query
    ):
        from repro.engine.plans import plan_for

        embeddings = resolve_query(icn_query, target_schema)
        relevant = filter_mappings(figure_mappings, embeddings)
        plan = plan_for("basic")
        baseline = plan.run(
            icn_query,
            figure_mappings,
            figure_document,
            embeddings=embeddings,
            relevant=relevant,
        )
        # A multi-embedding query evaluated over a one-shot iterator would
        # silently drop every mapping after the first embedding pass.
        from_generator = plan.run(
            icn_query,
            figure_mappings,
            figure_document,
            embeddings=embeddings,
            relevant=iter(relevant),
        )
        assert {(a.mapping_id, a.matches) for a in from_generator} == {
            (a.mapping_id, a.matches) for a in baseline
        }


class TestBasicPTQ:
    def test_answers_cover_relevant_mappings(self, icn_query, figure_mappings, figure_document):
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        assert len(result) == 5
        assert result.total_probability() == pytest.approx(1.0)

    def test_introduction_value_distribution(self, icn_query, figure_mappings, figure_document):
        # m1, m2 -> Cathy (BCN); m4 -> Bob (RCN); m5 -> Alice (OCN); m3 maps
        # IP to the SellerParty subtree which holds no contact name instance,
        # so it contributes an empty answer.
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        distribution = result.value_distribution()
        p = {m.mapping_id: m.probability for m in figure_mappings}
        assert distribution["Cathy"] == pytest.approx(p[0] + p[1])
        assert distribution["Bob"] == pytest.approx(p[3])
        assert distribution["Alice"] == pytest.approx(p[4])
        assert "Carol" not in distribution

    def test_empty_answer_for_structurally_impossible_mapping(
        self, icn_query, figure_mappings, figure_document
    ):
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        answer = result.answer_for(2)  # m3: SP ~ IP
        assert answer is not None
        assert answer.is_empty

    def test_value_predicate(self, figure_mappings, figure_document):
        query = parse_twig("//INVOICE_PARTY//CONTACT_NAME[. = 'Bob']")
        result = evaluate_ptq_basic(query, figure_mappings, figure_document)
        non_empty = result.non_empty()
        assert {a.mapping_id for a in non_empty} == {3}

    def test_irrelevant_query_gives_no_answers(self, figure_mappings, figure_document):
        query = parse_twig("ORDER/NOT_THERE")
        result = evaluate_ptq_basic(query, figure_mappings, figure_document)
        assert len(result) == 0

    def test_restricting_mappings_subset(self, icn_query, figure_mappings, figure_document):
        subset = [figure_mappings[0], figure_mappings[4]]
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document, mappings=subset)
        assert {a.mapping_id for a in result} == {0, 4}


class TestBlockTreePTQ:
    def test_equals_basic_on_example(self, icn_query, figure_mappings, figure_document, figure_block_tree):
        basic = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        block = evaluate_ptq_blocktree(icn_query, figure_mappings, figure_document, figure_block_tree)
        assert {(a.mapping_id, a.matches) for a in basic} == {
            (a.mapping_id, a.matches) for a in block
        }

    @pytest.mark.parametrize(
        "text",
        [
            "ORDER//CONTACT_NAME",
            "ORDER/INVOICE_PARTY/CONTACT_NAME",
            "ORDER[./SUPPLIER_PARTY]/INVOICE_PARTY/CONTACT_NAME",
            "//CONTACT_NAME",
            "ORDER/SUPPLIER_PARTY/CONTACT_NAME",
        ],
    )
    def test_equivalence_on_various_shapes(
        self, text, figure_mappings, figure_document, figure_block_tree
    ):
        query = parse_twig(text)
        basic = evaluate_ptq_basic(query, figure_mappings, figure_document)
        block = evaluate_ptq_blocktree(query, figure_mappings, figure_document, figure_block_tree)
        assert {(a.mapping_id, a.matches) for a in basic} == {
            (a.mapping_id, a.matches) for a in block
        }

    def test_equivalence_with_sparse_block_tree(self, icn_query, figure_mappings, figure_document):
        # Correctness must not depend on how many c-blocks were generated
        # (Section IV-B): an almost-empty block tree still gives the same
        # answers, only more slowly.
        sparse_tree = build_block_tree(figure_mappings, BlockTreeConfig(tau=0.9, max_blocks=0))
        basic = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        block = evaluate_ptq_blocktree(icn_query, figure_mappings, figure_document, sparse_tree)
        assert {(a.mapping_id, a.matches) for a in basic} == {
            (a.mapping_id, a.matches) for a in block
        }

    def test_mismatched_block_tree_rejected(self, icn_query, figure_mappings, figure_document, d7_block_tree):
        with pytest.raises(QueryError):
            evaluate_ptq_blocktree(icn_query, figure_mappings, figure_document, d7_block_tree)

    def test_dispatcher(self, icn_query, figure_mappings, figure_document, figure_block_tree):
        basic = evaluate_ptq(icn_query, figure_mappings, figure_document)
        block = evaluate_ptq(icn_query, figure_mappings, figure_document, figure_block_tree)
        assert {(a.mapping_id, a.matches) for a in basic} == {
            (a.mapping_id, a.matches) for a in block
        }


class TestTopKPTQ:
    def test_returns_k_most_probable(self, icn_query, figure_mappings, figure_document):
        result = evaluate_topk_ptq(icn_query, figure_mappings, figure_document, k=2)
        assert len(result) == 2
        expected = sorted(figure_mappings, key=lambda m: -m.probability)[:2]
        assert {a.mapping_id for a in result} == {m.mapping_id for m in expected}

    def test_k_larger_than_relevant_returns_all(self, icn_query, figure_mappings, figure_document):
        result = evaluate_topk_ptq(icn_query, figure_mappings, figure_document, k=50)
        assert len(result) == 5

    def test_topk_answers_subset_of_full_ptq(self, icn_query, figure_mappings, figure_document, figure_block_tree):
        full = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        topk = evaluate_topk_ptq(
            icn_query, figure_mappings, figure_document, k=3, block_tree=figure_block_tree
        )
        full_map = {a.mapping_id: a.matches for a in full}
        for answer in topk:
            assert full_map[answer.mapping_id] == answer.matches

    def test_invalid_k(self, icn_query, figure_mappings, figure_document):
        with pytest.raises(QueryError):
            evaluate_topk_ptq(icn_query, figure_mappings, figure_document, k=0)

    def test_blocktree_and_basic_topk_agree(self, icn_query, figure_mappings, figure_document, figure_block_tree):
        basic = evaluate_topk_ptq(icn_query, figure_mappings, figure_document, k=3)
        block = evaluate_topk_ptq(
            icn_query, figure_mappings, figure_document, k=3, block_tree=figure_block_tree
        )
        assert {(a.mapping_id, a.matches) for a in basic} == {
            (a.mapping_id, a.matches) for a in block
        }


class TestPTQResult:
    def test_answers_sorted_by_probability(self, icn_query, figure_mappings, figure_document):
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        probabilities = [answer.probability for answer in result]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_pattern_distribution_sums_to_total(self, icn_query, figure_mappings, figure_document):
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        distribution = result.pattern_distribution()
        assert sum(distribution.values()) == pytest.approx(result.total_probability())

    def test_answer_for_unknown_mapping(self, icn_query, figure_mappings, figure_document):
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        assert result.answer_for(99) is None

    def test_value_distribution_requires_document(self, icn_query, figure_mappings, figure_document):
        from repro.query.results import PTQResult

        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        stripped = PTQResult(result.query, list(result.answers), document=None)
        with pytest.raises(ValueError):
            stripped.value_distribution()

    def test_non_empty_filter(self, icn_query, figure_mappings, figure_document):
        result = evaluate_ptq_basic(icn_query, figure_mappings, figure_document)
        assert {a.mapping_id for a in result.non_empty()} == {0, 1, 3, 4}
