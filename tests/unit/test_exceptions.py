"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "SchemaError",
            "SchemaParseError",
            "DocumentError",
            "DocumentConformanceError",
            "MatchingError",
            "MappingError",
            "AssignmentError",
            "BlockTreeError",
            "QueryError",
            "TwigParseError",
            "RewriteError",
            "DatasetError",
            "DataspaceError",
            "CorpusError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        cls = getattr(exceptions, name)
        assert issubclass(cls, exceptions.ReproError)

    def test_parse_error_is_schema_error(self):
        assert issubclass(exceptions.SchemaParseError, exceptions.SchemaError)

    def test_conformance_error_is_document_error(self):
        assert issubclass(exceptions.DocumentConformanceError, exceptions.DocumentError)

    def test_assignment_error_is_mapping_error(self):
        assert issubclass(exceptions.AssignmentError, exceptions.MappingError)

    def test_twig_parse_error_is_query_error(self):
        assert issubclass(exceptions.TwigParseError, exceptions.QueryError)

    def test_all_exported(self):
        for name in exceptions.__all__:
            assert hasattr(exceptions, name)

    def test_catching_base_class(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.BlockTreeError("boom")


class TestStableCodes:
    """Every error class carries the stable code used on the wire."""

    def test_base_code_is_internal(self):
        assert exceptions.ReproError.code == "internal"

    @pytest.mark.parametrize(
        ("name", "code"),
        [
            ("SchemaError", "schema"),
            ("SchemaParseError", "schema-parse"),
            ("DocumentError", "document"),
            ("DocumentConformanceError", "document-conformance"),
            ("MatchingError", "matching"),
            ("MappingError", "mapping"),
            ("AssignmentError", "assignment"),
            ("BlockTreeError", "blocktree"),
            ("QueryError", "query"),
            ("TwigParseError", "twig-parse"),
            ("RewriteError", "rewrite"),
            ("DatasetError", "dataset"),
            ("DataspaceError", "dataspace"),
            ("CorpusError", "corpus"),
            ("StoreError", "store"),
            ("KernelError", "kernel"),
        ],
    )
    def test_declared_codes(self, name, code):
        assert getattr(exceptions, name).code == code

    def test_codes_are_unique(self):
        declared = [
            cls.__dict__["code"]
            for cls in vars(exceptions).values()
            if isinstance(cls, type)
            and issubclass(cls, exceptions.ReproError)
            and "code" in cls.__dict__
        ]
        assert len(declared) == len(set(declared))

    def test_instance_reads_class_code(self):
        assert exceptions.QueryError("x").code == "query"


class TestWarnings:
    def test_hierarchy(self):
        assert issubclass(exceptions.ReproWarning, RuntimeWarning)
        assert issubclass(exceptions.StoreFallbackWarning, exceptions.ReproWarning)
        assert issubclass(exceptions.PersistFailedWarning, exceptions.ReproWarning)

    def test_warnings_are_not_errors(self):
        assert not issubclass(exceptions.ReproWarning, exceptions.ReproError)

    def test_warning_codes(self):
        assert exceptions.StoreFallbackWarning.code == "store-fallback"
        assert exceptions.PersistFailedWarning.code == "persist-failed"

    def test_catchable_via_base(self):
        with pytest.warns(exceptions.ReproWarning):
            import warnings

            warnings.warn(exceptions.StoreFallbackWarning("fallback"))
