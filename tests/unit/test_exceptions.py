"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "SchemaError",
            "SchemaParseError",
            "DocumentError",
            "DocumentConformanceError",
            "MatchingError",
            "MappingError",
            "AssignmentError",
            "BlockTreeError",
            "QueryError",
            "TwigParseError",
            "RewriteError",
            "DatasetError",
            "DataspaceError",
            "CorpusError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        cls = getattr(exceptions, name)
        assert issubclass(cls, exceptions.ReproError)

    def test_parse_error_is_schema_error(self):
        assert issubclass(exceptions.SchemaParseError, exceptions.SchemaError)

    def test_conformance_error_is_document_error(self):
        assert issubclass(exceptions.DocumentConformanceError, exceptions.DocumentError)

    def test_assignment_error_is_mapping_error(self):
        assert issubclass(exceptions.AssignmentError, exceptions.MappingError)

    def test_twig_parse_error_is_query_error(self):
        assert issubclass(exceptions.TwigParseError, exceptions.QueryError)

    def test_all_exported(self):
        for name in exceptions.__all__:
            assert hasattr(exceptions, name)

    def test_catching_base_class(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.BlockTreeError("boom")
