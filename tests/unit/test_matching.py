"""Tests for correspondences, schema matchings and the matcher."""

from __future__ import annotations

import pytest

from repro.exceptions import MatchingError
from repro.matching.correspondence import Correspondence
from repro.matching.matcher import MatcherConfig, SchemaMatcher
from repro.matching.matching import SchemaMatching
from repro.schema.corpus import load_corpus_schema
from repro.schema.parser import parse_schema


class TestCorrespondence:
    def test_key(self):
        assert Correspondence(3, 5, 0.8).key == (3, 5)

    def test_score_bounds_enforced(self):
        with pytest.raises(MatchingError):
            Correspondence(0, 0, 1.5)
        with pytest.raises(MatchingError):
            Correspondence(0, 0, -0.1)

    def test_negative_ids_rejected(self):
        with pytest.raises(MatchingError):
            Correspondence(-1, 0, 0.5)

    def test_frozen(self):
        correspondence = Correspondence(1, 2, 0.5)
        with pytest.raises(AttributeError):
            correspondence.score = 0.9  # type: ignore[misc]

    def test_repr(self):
        assert "1~2" in repr(Correspondence(1, 2, 0.5))


@pytest.fixture()
def tiny_schemas():
    source = parse_schema("A\n  B\n  C\n", name="src")
    target = parse_schema("X\n  Y\n  Z\n", name="tgt")
    return source, target


class TestSchemaMatching:
    def test_add_and_lookup(self, tiny_schemas):
        source, target = tiny_schemas
        matching = SchemaMatching(source, target)
        matching.add_pair(0, 0, 0.9)
        matching.add_pair(1, 1, 0.7)
        assert matching.capacity == 2
        assert matching.get(0, 0).score == 0.9
        assert matching.get(2, 2) is None
        assert matching.score(1, 1) == 0.7
        assert matching.score(2, 2) == 0.0

    def test_indexes(self, tiny_schemas):
        source, target = tiny_schemas
        matching = SchemaMatching(source, target)
        matching.add_pair(1, 1, 0.7)
        matching.add_pair(1, 2, 0.6)
        assert len(matching.for_source(1)) == 2
        assert len(matching.for_target(1)) == 1
        assert matching.matched_source_ids() == {1}
        assert matching.matched_target_ids() == {1, 2}

    def test_duplicate_rejected(self, tiny_schemas):
        source, target = tiny_schemas
        matching = SchemaMatching(source, target)
        matching.add_pair(0, 0, 0.9)
        with pytest.raises(MatchingError):
            matching.add_pair(0, 0, 0.8)

    def test_out_of_range_ids_rejected(self, tiny_schemas):
        source, target = tiny_schemas
        matching = SchemaMatching(source, target)
        with pytest.raises(MatchingError):
            matching.add_pair(99, 0, 0.5)
        with pytest.raises(MatchingError):
            matching.add_pair(0, 99, 0.5)

    def test_contains_and_keys(self, tiny_schemas):
        source, target = tiny_schemas
        matching = SchemaMatching(source, target)
        matching.add_pair(0, 1, 0.5)
        assert (0, 1) in matching
        assert matching.keys() == {(0, 1)}

    def test_describe(self, tiny_schemas):
        source, target = tiny_schemas
        matching = SchemaMatching(source, target, name="demo")
        matching.add_pair(0, 0, 0.4)
        matching.add_pair(1, 1, 0.6)
        info = matching.describe()
        assert info["capacity"] == 2
        assert info["mean_score"] == pytest.approx(0.5)

    def test_constructor_accepts_iterable(self, tiny_schemas):
        source, target = tiny_schemas
        matching = SchemaMatching(source, target, [Correspondence(0, 0, 0.5)])
        assert matching.capacity == 1


class TestMatcherConfig:
    def test_defaults_valid(self):
        MatcherConfig()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(MatchingError):
            MatcherConfig(strategy="hybrid")

    def test_threshold_bounds(self):
        with pytest.raises(MatchingError):
            MatcherConfig(threshold=0.0)
        with pytest.raises(MatchingError):
            MatcherConfig(threshold=1.0)

    def test_caps_positive(self):
        with pytest.raises(MatchingError):
            MatcherConfig(max_per_target=0)

    def test_noise_non_negative(self):
        with pytest.raises(MatchingError):
            MatcherConfig(noise=-0.1)


class TestSchemaMatcher:
    def test_deterministic(self):
        source = load_corpus_schema("excel")
        target = load_corpus_schema("noris")
        first = SchemaMatcher().match(source, target)
        second = SchemaMatcher().match(source, target)
        assert first.keys() == second.keys()
        assert [c.score for c in first] == [c.score for c in second]

    def test_scores_in_range(self):
        source = load_corpus_schema("excel")
        target = load_corpus_schema("paragon")
        matching = SchemaMatcher().match(source, target)
        assert all(0.0 <= c.score <= 1.0 for c in matching)

    def test_caps_respected(self):
        source = load_corpus_schema("excel")
        target = load_corpus_schema("noris")
        config = MatcherConfig(max_per_target=2, max_per_source=1)
        matching = SchemaMatcher(config).match(source, target)
        per_target: dict[int, int] = {}
        per_source: dict[int, int] = {}
        for correspondence in matching:
            per_target[correspondence.target_id] = per_target.get(correspondence.target_id, 0) + 1
            per_source[correspondence.source_id] = per_source.get(correspondence.source_id, 0) + 1
        assert all(count <= 2 for count in per_target.values())
        assert all(count <= 1 for count in per_source.values())

    def test_fragment_sparser_than_context(self):
        source = load_corpus_schema("excel")
        target = load_corpus_schema("paragon")
        context = SchemaMatcher(MatcherConfig(strategy="context")).match(source, target)
        fragment = SchemaMatcher(MatcherConfig(strategy="fragment")).match(source, target)
        assert fragment.capacity < context.capacity

    def test_sparse_relative_to_cross_product(self):
        source = load_corpus_schema("noris")
        target = load_corpus_schema("paragon")
        matching = SchemaMatcher().match(source, target)
        assert matching.capacity < 0.1 * len(source) * len(target)

    def test_identical_labels_matched(self):
        source = load_corpus_schema("xcbl")
        target = load_corpus_schema("apertum")
        matching = SchemaMatcher().match(source, target)
        buyer_part = target.elements_by_label("BuyerPartID")[0]
        assert matching.for_target(buyer_part.element_id)

    def test_higher_threshold_fewer_correspondences(self):
        source = load_corpus_schema("excel")
        target = load_corpus_schema("noris")
        low = SchemaMatcher(MatcherConfig(threshold=0.52)).match(source, target)
        high = SchemaMatcher(MatcherConfig(threshold=0.75)).match(source, target)
        assert high.capacity < low.capacity
