"""Tests for bounded in-flight admission control (``repro.net.admission``).

The controller is single-event-loop; each test runs its scenario inside one
``asyncio.run`` so acquisition order, queueing, and drain semantics are
deterministic.  Slots are acquired/released explicitly (not via the
``slot()`` context manager) where a test must hold one across awaits —
an un-awaited context manager would release on garbage collection.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import OverloadedError, ShuttingDownError
from repro.net import AdmissionController


class TestAdmission:
    def test_admits_up_to_max_inflight(self):
        async def run():
            controller = AdmissionController(2, 4)
            await controller.acquire()
            await controller.acquire()
            return controller.inflight, controller.queued

        assert asyncio.run(run()) == (2, 0)

    def test_sheds_when_queue_full(self):
        async def run():
            controller = AdmissionController(1, 0, retry_after=0.2)
            await controller.acquire()
            with pytest.raises(OverloadedError) as info:
                await controller.acquire()
            return info.value.retry_after, controller.stats()["shed"]

        retry_after, shed = asyncio.run(run())
        assert retry_after == 0.2
        assert shed == 1

    def test_release_admits_fifo(self):
        async def run():
            controller = AdmissionController(1, 4)
            await controller.acquire()
            order = []

            async def waiter(tag):
                await controller.acquire()
                order.append(tag)
                controller.release()

            tasks = [asyncio.create_task(waiter(i)) for i in range(3)]
            await asyncio.sleep(0)  # let all three enqueue, in creation order
            assert controller.queued == 3
            controller.release()
            await asyncio.gather(*tasks)
            return order

        assert asyncio.run(run()) == [0, 1, 2]

    def test_slot_context_manager_releases(self):
        async def run():
            controller = AdmissionController(1, 0)
            async with controller.slot():
                assert controller.inflight == 1
            return controller.inflight

        assert asyncio.run(run()) == 0

    def test_cancelled_waiter_leaves_queue(self):
        async def run():
            controller = AdmissionController(1, 4)
            await controller.acquire()
            task = asyncio.create_task(controller.acquire())
            await asyncio.sleep(0)
            assert controller.queued == 1
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return controller.queued

        assert asyncio.run(run()) == 0


class TestDrain:
    def test_drain_refuses_queued_waiters(self):
        async def run():
            controller = AdmissionController(1, 4)
            await controller.acquire()
            waiter = asyncio.create_task(controller.acquire())
            await asyncio.sleep(0)
            drain = asyncio.create_task(controller.drain())
            await asyncio.sleep(0)
            refusal = await asyncio.gather(waiter, return_exceptions=True)
            controller.release()  # the in-flight request finishes
            await drain
            return refusal[0], controller.draining

        refusal, draining = asyncio.run(run())
        assert isinstance(refusal, ShuttingDownError)
        assert draining

    def test_acquire_after_drain_is_refused(self):
        async def run():
            controller = AdmissionController(1, 4)
            await controller.drain()
            with pytest.raises(ShuttingDownError):
                await controller.acquire()

        asyncio.run(run())

    def test_drain_waits_for_inflight(self):
        async def run():
            controller = AdmissionController(2, 4)
            await controller.acquire()
            drain = asyncio.create_task(controller.drain())
            await asyncio.sleep(0)
            assert not drain.done()  # still one in flight
            controller.release()
            await drain

        asyncio.run(run())


class TestReconfigure:
    def test_raising_cap_admits_queued(self):
        async def run():
            controller = AdmissionController(1, 4)
            await controller.acquire()
            waiter = asyncio.create_task(controller.acquire())
            await asyncio.sleep(0)
            assert controller.queued == 1
            controller.reconfigure(max_inflight=2)
            await waiter
            return controller.inflight, controller.queued

        assert asyncio.run(run()) == (2, 0)

    def test_lowering_cap_applies_to_new_work(self):
        async def run():
            controller = AdmissionController(4, 0)
            await controller.acquire()
            await controller.acquire()
            controller.reconfigure(max_inflight=1)
            # Existing slots are not revoked; new admission is refused.
            assert controller.inflight == 2
            with pytest.raises(OverloadedError):
                await controller.acquire()

        asyncio.run(run())

    def test_retry_after_reconfigured(self):
        async def run():
            controller = AdmissionController(1, 0, retry_after=0.1)
            await controller.acquire()
            controller.reconfigure(retry_after=1.5)
            with pytest.raises(OverloadedError) as info:
                await controller.acquire()
            return info.value.retry_after

        assert asyncio.run(run()) == 1.5


class TestStats:
    def test_counters(self):
        async def run():
            controller = AdmissionController(1, 0)
            await controller.acquire()
            with pytest.raises(OverloadedError):
                await controller.acquire()
            controller.release()
            return controller.stats()

        stats = asyncio.run(run())
        assert stats["max_inflight"] == 1
        assert stats["max_queue"] == 0
        assert stats["inflight"] == 0
        assert stats["admitted"] == 1
        assert stats["completed"] == 1
        assert stats["shed"] == 1
        assert stats["peak_inflight"] == 1
        assert stats["draining"] is False
