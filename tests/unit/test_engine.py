"""Tests for the engine facade: Dataspace sessions, prepared queries, plans."""

from __future__ import annotations

import pytest

from repro.engine import (
    BasicPlan,
    BlockTreePlan,
    CompiledPlan,
    Dataspace,
    PreparedQuery,
    QueryBuilder,
    available_plans,
    plan_for,
)
from repro.exceptions import DataspaceError, QueryError
from repro.matching.matcher import MatcherConfig
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.query.parser import parse_twig
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree
from repro.query.topk import evaluate_topk_ptq
from repro.schema.parser import parse_schema

ICN_QUERY = "//INVOICE_PARTY//CONTACT_NAME"


def answers_of(result):
    return {(answer.mapping_id, answer.matches) for answer in result}


@pytest.fixture()
def figure_dataspace(figure_mappings, figure_document):
    """A session over the Figure 3 mapping set and Figure 2 document."""
    return Dataspace.from_mapping_set(
        figure_mappings, document=figure_document, tau=0.4, name="figure1"
    )


# --------------------------------------------------------------------------- #
# Lazy build + memoization + invalidation
# --------------------------------------------------------------------------- #
class TestLazyBuild:
    def test_nothing_built_up_front(self, source_schema, target_schema):
        ds = Dataspace(source_schema, target_schema, h=5)
        info = ds.describe()
        assert not info["matching_built"]
        assert not info["mapping_set_built"]
        assert not info["block_tree_built"]
        assert not info["document_loaded"]

    def test_artifacts_built_on_demand_and_memoized(self, source_schema, target_schema):
        ds = Dataspace(source_schema, target_schema, h=5, seed=1)
        tree = ds.block_tree  # forces matching -> mapping set -> tree
        info = ds.describe()
        assert info["matching_built"] and info["mapping_set_built"] and info["block_tree_built"]
        assert ds.matching is ds.matching
        assert ds.mapping_set is ds.mapping_set
        assert ds.block_tree is tree

    def test_document_generated_for_schema_sessions(self, source_schema, target_schema):
        ds = Dataspace(source_schema, target_schema, h=5, seed=1)
        assert len(ds.document) > 0
        assert ds.document is ds.document

    def test_invalid_h_rejected(self, source_schema, target_schema):
        with pytest.raises(DataspaceError):
            Dataspace(source_schema, target_schema, h=0)

    def test_invalid_tau_rejected_eagerly(self, source_schema, target_schema):
        from repro.exceptions import BlockTreeError

        with pytest.raises(BlockTreeError):
            Dataspace(source_schema, target_schema, tau=3.0)


class TestInvalidation:
    def test_tau_change_rebuilds_block_tree_only(self, figure_dataspace):
        ds = figure_dataspace
        mapping_set = ds.mapping_set
        tree = ds.block_tree
        generation = ds.generation
        ds.configure(tau=0.9)
        assert ds.mapping_set is mapping_set
        assert ds.block_tree is not tree
        # Prepared-query resolve/filter caches stay valid: no generation bump.
        assert ds.generation == generation

    def test_h_change_invalidates_mapping_set_and_tree(self, source_schema, target_schema):
        ds = Dataspace(source_schema, target_schema, h=5, seed=1)
        matching = ds.matching
        mapping_set = ds.mapping_set
        tree = ds.block_tree
        generation = ds.generation
        ds.configure(h=3)
        assert ds.generation == generation + 1
        assert ds.matching is matching  # matcher output unaffected
        assert ds.mapping_set is not mapping_set
        assert len(ds.mapping_set) <= 3
        assert ds.block_tree is not tree

    def test_matcher_config_change_invalidates_everything(self, source_schema, target_schema):
        ds = Dataspace(source_schema, target_schema, h=5, seed=1)
        matching = ds.matching
        generation = ds.generation
        ds.configure(matcher_config=MatcherConfig(strategy="fragment", seed=1))
        assert ds.generation == generation + 1
        assert ds.matching is not matching

    def test_noop_configure_keeps_caches(self, figure_dataspace):
        ds = figure_dataspace
        tree = ds.block_tree
        generation = ds.generation
        ds.configure(tau=ds.tau)
        assert ds.block_tree is tree
        assert ds.generation == generation

    def test_explicit_invalidate_bumps_generation(self, figure_dataspace):
        ds = figure_dataspace
        ds.block_tree
        generation = ds.generation
        ds.invalidate()
        assert ds.generation == generation + 1
        assert not ds.describe()["block_tree_built"]
        # Pinned mapping set survives an explicit invalidate.
        assert ds.describe()["mapping_set_built"]

    def test_pinned_mapping_set_rejects_h_and_method(self, figure_dataspace):
        with pytest.raises(DataspaceError):
            figure_dataspace.configure(h=2)
        with pytest.raises(DataspaceError):
            figure_dataspace.configure(method="murty")

    def test_pinned_matching_rejects_matcher_config(self, figure_dataspace):
        with pytest.raises(DataspaceError):
            figure_dataspace.configure(matcher_config=MatcherConfig())


# --------------------------------------------------------------------------- #
# Prepared queries
# --------------------------------------------------------------------------- #
class TestPreparedQueries:
    def test_prepare_returns_cached_instance(self, figure_dataspace):
        first = figure_dataspace.prepare(ICN_QUERY)
        second = figure_dataspace.prepare(ICN_QUERY)
        assert isinstance(first, PreparedQuery)
        assert first is second

    def test_prepare_accepts_twig_objects(self, figure_dataspace):
        twig = parse_twig(ICN_QUERY)
        prepared = figure_dataspace.prepare(twig)
        assert prepared.query is twig
        assert figure_dataspace.prepare(twig) is prepared

    def test_twig_objects_keyed_by_identity_not_text(self, figure_dataspace):
        # Two distinct objects with the same text must not share a prepared
        # query: a caller-supplied twig may differ structurally from what
        # the session would parse from the same text (aliases, hand-built
        # trees).
        first = parse_twig(ICN_QUERY)
        second = parse_twig(ICN_QUERY)
        assert first.text == second.text
        assert figure_dataspace.prepare(first).query is first
        assert figure_dataspace.prepare(second).query is second

    def test_textless_twigs_do_not_collide(self, figure_dataspace):
        from repro.query.twig import TwigNode, TwigQuery

        # Hand-built queries have no text; distinct objects must get
        # distinct prepared queries rather than colliding on a shared key.
        icn = TwigQuery(TwigNode("CONTACT_NAME", axis="descendant"))
        order = TwigQuery(TwigNode("ORDER", axis="descendant"))
        assert icn.text == order.text == ""
        prepared_icn = figure_dataspace.prepare(icn)
        prepared_order = figure_dataspace.prepare(order)
        assert prepared_icn is not prepared_order
        assert prepared_icn.query is icn
        assert prepared_order.query is order
        assert figure_dataspace.prepare(icn) is prepared_icn

    def test_resolve_and_filter_run_once_across_executions(self, figure_dataspace):
        prepared = figure_dataspace.prepare(ICN_QUERY)
        prepared.execute()
        prepared.execute(k=2)
        prepared.execute(plan="basic")
        assert prepared.resolve_count == 1
        assert prepared.filter_count == 1

    def test_filter_refreshes_after_generation_bump(self, figure_dataspace):
        prepared = figure_dataspace.prepare(ICN_QUERY)
        before = prepared.execute()
        figure_dataspace.invalidate()
        after = prepared.execute()
        assert prepared.resolve_count == 1  # target schema unchanged
        assert prepared.filter_count == 2
        assert answers_of(before) == answers_of(after)

    def test_block_tree_rebuild_does_not_refilter(self, figure_dataspace):
        prepared = figure_dataspace.prepare(ICN_QUERY)
        prepared.execute()
        figure_dataspace.configure(tau=0.9)
        prepared.execute()
        assert prepared.filter_count == 1


# --------------------------------------------------------------------------- #
# Plans
# --------------------------------------------------------------------------- #
class TestPlans:
    def test_registry_contains_all_plans(self):
        assert "basic" in available_plans()
        assert "blocktree" in available_plans()
        assert "compiled" in available_plans()

    def test_plan_lookup_normalises_spelling(self):
        assert isinstance(plan_for("block-tree"), BlockTreePlan)
        assert isinstance(plan_for("BLOCKTREE"), BlockTreePlan)
        assert isinstance(plan_for("basic"), BasicPlan)
        assert isinstance(plan_for("Compiled"), CompiledPlan)

    def test_plan_instances_pass_through(self):
        plan = BasicPlan()
        assert plan_for(plan) is plan

    def test_unknown_plan_error_lists_registered_plans(self):
        with pytest.raises(QueryError) as excinfo:
            plan_for("quantum")
        message = str(excinfo.value)
        for name in ("basic", "blocktree", "compiled"):
            assert name in message

    def test_default_selection_is_compiled(self, figure_dataspace):
        plan, reason = figure_dataspace.select_plan()
        assert plan.name == "compiled"
        assert "compiled" in reason
        # Automatic selection no longer forces a block-tree build.
        assert not figure_dataspace.describe()["block_tree_built"]

    def test_forced_override_reported_by_explain(self, figure_dataspace):
        report = figure_dataspace.query(ICN_QUERY).plan("basic").explain()
        assert report.plan == "basic"
        assert report.reason == "forced by caller"
        assert report.num_blocks is None
        assert report.compiled_stats is None

    def test_compiled_matches_basic_on_empty_block_tree(self):
        source = parse_schema("A\n  B\n  C\n", name="src")
        target = parse_schema("X\n  Y\n", name="tgt")
        matching = SchemaMatching(source, target, name="tiny")
        b = source.element_by_path("A.B").element_id
        c = source.element_by_path("A.C").element_id
        y = target.element_by_path("X.Y").element_id
        matching.add_pair(b, y, 0.9)
        matching.add_pair(c, y, 0.8)
        mappings = MappingSet(
            matching,
            [
                Mapping(0, frozenset([(b, y)]), score=0.9),
                Mapping(1, frozenset([(c, y)]), score=0.8),
            ],
        )
        ds = Dataspace.from_mapping_set(mappings, tau=1.0)
        assert ds.block_tree.num_blocks == 0
        plan, _ = ds.select_plan()
        assert plan.name == "compiled"
        auto = ds.execute("//Y", use_cache=False)
        basic = ds.execute("//Y", plan="basic", use_cache=False)
        assert answers_of(auto) == answers_of(basic)

    def test_blocktree_plan_requires_tree(self, figure_mappings, figure_document):
        plan = plan_for("blocktree")
        query = parse_twig(ICN_QUERY)
        with pytest.raises(QueryError):
            plan.run(query, figure_mappings, figure_document, block_tree=None)


# --------------------------------------------------------------------------- #
# Builder, execution, batch
# --------------------------------------------------------------------------- #
class TestBuilderAndExecution:
    def test_builder_is_immutable(self, figure_dataspace):
        base = figure_dataspace.query(ICN_QUERY)
        restricted = base.top_k(2)
        assert isinstance(base, QueryBuilder)
        assert base is not restricted
        assert len(base.execute()) == 5
        assert len(restricted.execute()) == 2
        assert base.prepared is restricted.prepared

    def test_results_identical_to_free_functions(
        self, figure_dataspace, figure_mappings, figure_document, figure_block_tree
    ):
        query = parse_twig(ICN_QUERY)
        engine_tree = figure_dataspace.query(ICN_QUERY).plan("blocktree").execute()
        engine_basic = figure_dataspace.query(ICN_QUERY).plan("basic").execute()
        engine_compiled = figure_dataspace.query(ICN_QUERY).plan("compiled").execute()
        seed_tree = evaluate_ptq_blocktree(
            query, figure_mappings, figure_document, figure_block_tree
        )
        seed_basic = evaluate_ptq_basic(query, figure_mappings, figure_document)
        assert answers_of(engine_tree) == answers_of(seed_tree)
        assert answers_of(engine_basic) == answers_of(seed_basic)
        assert answers_of(engine_compiled) == answers_of(seed_basic)

    def test_top_k_identical_to_free_function(
        self, figure_dataspace, figure_mappings, figure_document, figure_block_tree
    ):
        query = parse_twig(ICN_QUERY)
        engine = figure_dataspace.query(ICN_QUERY).top_k(2).execute()
        seed = evaluate_topk_ptq(
            query, figure_mappings, figure_document, k=2, block_tree=figure_block_tree
        )
        assert answers_of(engine) == answers_of(seed)

    def test_invalid_k_rejected(self, figure_dataspace):
        with pytest.raises(QueryError):
            figure_dataspace.query(ICN_QUERY).top_k(0).execute()

    def test_batch_matches_individual_execution(self, figure_dataspace):
        queries = [ICN_QUERY, "//SUPPLIER_PARTY//CONTACT_NAME", "ORDER"]
        batch = figure_dataspace.batch(queries, k=3)
        assert len(batch) == 3
        for query, result in zip(queries, batch):
            assert answers_of(result) == answers_of(figure_dataspace.execute(query, k=3))

    def test_batch_reuses_prepared_queries(self, figure_dataspace):
        figure_dataspace.batch([ICN_QUERY, ICN_QUERY])
        prepared = figure_dataspace.prepare(ICN_QUERY)
        assert prepared.resolve_count == 1
        assert prepared.filter_count == 1

    def test_explain_counts_answers(self, figure_dataspace):
        report = figure_dataspace.query(ICN_QUERY).explain()
        assert report.plan == "compiled"
        assert report.num_mappings == 5
        assert report.num_relevant == 5
        assert report.num_answers == 5
        assert set(report.timings_ms) == {"resolve", "filter", "evaluate"}
        # The compiled plan needs no block tree; it reports rewrite sharing
        # and bitset statistics instead.
        assert report.num_blocks is None
        stats = report.compiled_stats
        assert stats is not None
        assert stats["num_distinct_rewrites"] >= 1
        assert stats["num_rewrite_groups"] >= stats["num_distinct_rewrites"]
        assert stats["num_posting_lists"] > 0
        as_dict = report.to_dict()
        assert as_dict["plan"] == "compiled"
        assert as_dict["compiled_stats"] == stats
        assert "plan:" in report.format()
        assert "compiled:" in report.format()

    def test_explain_blocktree_reports_blocks(self, figure_dataspace):
        report = figure_dataspace.query(ICN_QUERY).plan("blocktree").explain()
        assert report.plan == "blocktree"
        assert report.num_blocks is not None and report.num_blocks > 0
        assert report.compiled_stats is None

    def test_set_document_swaps_evaluation_target(
        self, figure_dataspace, source_schema, figure_elements
    ):
        from repro.document.document import XMLDocument

        # A session built over schemas can swap in a conforming document.
        schema = figure_dataspace.source_schema
        empty = XMLDocument(schema, name="empty.xml")
        empty.add_root(figure_elements["Order"])
        figure_dataspace.set_document(empty.finalize())
        result = figure_dataspace.query(ICN_QUERY).execute()
        assert all(answer.is_empty for answer in result)

    def test_set_document_rejects_foreign_schema(self, figure_dataspace, target_schema):
        from repro.document.document import XMLDocument

        foreign = XMLDocument(target_schema, name="foreign.xml")
        with pytest.raises(DataspaceError):
            figure_dataspace.set_document(foreign)

    def test_constructor_rejects_foreign_document(self, source_schema, target_schema):
        from repro.document.document import XMLDocument

        foreign = XMLDocument(target_schema, name="foreign.xml")
        with pytest.raises(DataspaceError):
            Dataspace(source_schema, target_schema, document=foreign)

    def test_from_mapping_set_rejects_foreign_document(
        self, figure_mappings, target_schema
    ):
        from repro.document.document import XMLDocument

        foreign = XMLDocument(target_schema, name="foreign.xml")
        with pytest.raises(DataspaceError):
            Dataspace.from_mapping_set(figure_mappings, document=foreign)
