"""Unit tests for the explicit result-cache key (scope-discriminated)."""

from __future__ import annotations

from repro.engine import CacheKey, Dataspace, ResultCache


def make_key(**overrides):
    fields = dict(
        query="Q7",
        plan="compiled",
        k=10,
        tau=0.2,
        generation=3,
        document_version=1,
    )
    fields.update(overrides)
    return CacheKey(**fields)


class TestCacheKeyIdentity:
    def test_equal_fields_equal_keys(self):
        assert make_key() == make_key()
        assert hash(make_key()) == hash(make_key())

    def test_every_field_participates(self):
        base = make_key()
        assert make_key(query="Q8") != base
        assert make_key(plan="basic") != base
        assert make_key(k=None) != base
        assert make_key(tau=0.3) != base
        assert make_key(generation=4) != base
        assert make_key(document_version=2) != base

    def test_scope_discriminates_session_corpus_shard(self):
        session = make_key()
        corpus = make_key(scope="corpus", shards=4)
        shard = make_key(scope="shard", shard=0, shards=4)
        spine = make_key(scope="spine", shards=4)
        keys = {session, corpus, shard, spine}
        assert len(keys) == 4

    def test_shard_scoped_keys_cannot_collide_with_whole_corpus_keys(self):
        corpus = make_key(scope="corpus", shards=4)
        for shard_id in range(4):
            assert make_key(scope="shard", shard=shard_id, shards=4) != corpus

    def test_distinct_shard_layouts_are_distinct(self):
        assert make_key(scope="corpus", shards=4) != make_key(scope="corpus", shards=7)
        assert make_key(scope="shard", shard=1, shards=4) != make_key(
            scope="shard", shard=1, shards=7
        )

    def test_generation_accepts_signature_tuples(self):
        signature = (("D1", 0, 0), ("D2", 2, 1))
        key = make_key(scope="corpus", generation=signature, document_version=None)
        assert key == make_key(
            scope="corpus", generation=signature, document_version=None
        )
        assert key != make_key(
            scope="corpus", generation=(("D1", 1, 0), ("D2", 2, 1)), document_version=None
        )


class TestCacheKeyInCache:
    def test_scoped_entries_coexist(self):
        cache = ResultCache(8)
        cache.put(make_key(), "session-result")
        cache.put(make_key(scope="corpus", shards=2), "corpus-result")
        cache.put(make_key(scope="shard", shard=0, shards=2), "shard-partial")
        assert cache.get(make_key()) == "session-result"
        assert cache.get(make_key(scope="corpus", shards=2)) == "corpus-result"
        assert cache.get(make_key(scope="shard", shard=0, shards=2)) == "shard-partial"
        assert cache.get(make_key(scope="shard", shard=1, shards=2)) is None

    def test_engine_result_keys_are_session_scoped(self, figure_mappings, figure_document):
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        prepared = session.prepare("//CONTACT_NAME")
        snapshot = session.snapshot(need_tree=False)
        plan, _ = session.select_plan()
        key = prepared._result_key(plan, 3, snapshot)
        assert isinstance(key, CacheKey)
        assert key.scope == "session"
        assert key.shard is None and key.shards is None
        assert key.generation == snapshot.generation
        assert key.tau == snapshot.tau

    def test_sharded_and_session_execution_share_one_cache_safely(
        self, figure_mappings, figure_document
    ):
        session = Dataspace.from_mapping_set(figure_mappings, document=figure_document)
        corpus = session.shard(2)
        query = "//CONTACT_NAME"
        plain = session.execute(query)
        merged = corpus.execute(query)
        # Both entries live in the session cache under different scopes.
        assert session.execute(query) is plain
        assert corpus.execute(query) is merged
        assert plain is not merged
