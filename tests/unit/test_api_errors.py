"""Tests for the wire-level error taxonomy (``repro.api.errors``)."""

from __future__ import annotations

import pytest

from repro import exceptions
from repro.api import (
    CODE_TO_ERROR,
    BadRequestError,
    OverloadedError,
    PayloadTooLargeError,
    ProtocolError,
    RequestTimeoutError,
    ShuttingDownError,
    error_code,
    error_for_code,
    error_from_wire,
    wire_error,
)
from repro.api.errors import _walk


class TestRegistry:
    def test_every_code_maps_to_a_unique_class(self):
        seen = {}
        for code, cls in CODE_TO_ERROR.items():
            assert cls.code == code
            assert code not in seen
            seen[code] = cls

    def test_registry_covers_whole_hierarchy(self):
        """Every concrete error class that declares a code is registered."""
        for cls in _walk(exceptions.ReproError):
            code = cls.__dict__.get("code")
            if code is not None:
                assert CODE_TO_ERROR[code] is cls

    def test_engine_errors_present(self):
        for code in (
            "schema",
            "schema-parse",
            "document",
            "matching",
            "mapping",
            "blocktree",
            "query",
            "twig-parse",
            "dataset",
            "dataspace",
            "corpus",
            "store",
            "kernel",
        ):
            assert code in CODE_TO_ERROR

    def test_serving_errors_present(self):
        assert CODE_TO_ERROR["bad-request"] is BadRequestError
        assert CODE_TO_ERROR["protocol"] is ProtocolError
        assert CODE_TO_ERROR["payload-too-large"] is PayloadTooLargeError
        assert CODE_TO_ERROR["overloaded"] is OverloadedError
        assert CODE_TO_ERROR["shutting-down"] is ShuttingDownError
        assert CODE_TO_ERROR["timeout"] is RequestTimeoutError

    def test_codes_are_stable_slugs(self):
        for code in CODE_TO_ERROR:
            assert code == code.lower()
            assert " " not in code

    def test_serving_errors_are_repro_errors(self):
        for cls in (
            BadRequestError,
            ProtocolError,
            PayloadTooLargeError,
            OverloadedError,
            ShuttingDownError,
            RequestTimeoutError,
        ):
            assert issubclass(cls, exceptions.ReproError)

    def test_payload_too_large_is_protocol_error(self):
        assert issubclass(PayloadTooLargeError, ProtocolError)

    def test_shutting_down_is_overloaded(self):
        assert issubclass(ShuttingDownError, OverloadedError)


class TestCodeLookup:
    def test_error_code_of_typed_error(self):
        assert error_code(exceptions.TwigParseError("x")) == "twig-parse"
        assert error_code(OverloadedError("x")) == "overloaded"

    def test_error_code_of_foreign_exception(self):
        assert error_code(ValueError("x")) == "internal"

    def test_error_for_code_round_trip(self):
        for code, cls in CODE_TO_ERROR.items():
            assert error_for_code(code) is cls

    def test_unknown_code_degrades_to_base(self):
        assert error_for_code("not-a-real-code") is exceptions.ReproError


class TestWireRoundTrip:
    @pytest.mark.parametrize("code", sorted(CODE_TO_ERROR))
    def test_every_class_survives_the_wire(self, code):
        cls = CODE_TO_ERROR[code]
        if issubclass(cls, OverloadedError):
            original = cls("boom", retry_after=0.25)
        else:
            original = cls("boom")
        restored = error_from_wire(wire_error(original))
        assert type(restored) is cls
        assert str(restored) == "boom"

    def test_payload_shape(self):
        payload = wire_error(exceptions.QueryError("bad plan"))
        assert payload == {
            "code": "query",
            "type": "QueryError",
            "message": "bad plan",
        }

    def test_retry_after_travels(self):
        payload = wire_error(OverloadedError("shed", retry_after=0.5))
        assert payload["retry_after"] == 0.5
        restored = error_from_wire(payload)
        assert isinstance(restored, OverloadedError)
        assert restored.retry_after == 0.5

    def test_retry_after_defaults_when_absent(self):
        restored = error_from_wire({"code": "overloaded", "message": "shed"})
        assert isinstance(restored, OverloadedError)
        assert restored.retry_after == 0.1

    def test_foreign_exception_maps_to_internal(self):
        payload = wire_error(RuntimeError("oops"))
        assert payload["code"] == "internal"
        assert payload["type"] == "RuntimeError"
        restored = error_from_wire(payload)
        assert type(restored) is exceptions.ReproError

    def test_empty_payload_degrades_gracefully(self):
        restored = error_from_wire({})
        assert isinstance(restored, exceptions.ReproError)
