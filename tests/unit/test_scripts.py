"""Unit tests for the CI helper scripts (perf trajectory, coverage table)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


perf_trajectory = load_script("perf_trajectory")
coverage_table = load_script("coverage_table")


RAW_BENCHMARK = {
    "machine_info": {
        "python_version": "3.12.0",
        "machine": "x86_64",
        "system": "Linux",
        "cpu": {"count": 8},
    },
    "benchmarks": [
        {
            "name": "test_service_throughput",
            "fullname": "benchmarks/test_bench_service_throughput.py::test_service_throughput",
            "group": None,
            "stats": {
                "min": 0.5,
                "max": 0.7,
                "mean": 0.6,
                "stddev": 0.05,
                "median": 0.58,
                "rounds": 3,
                "iterations": 1,
                "data": [0.5, 0.6, 0.7],  # volatile bulk, must be dropped
            },
        },
        {
            "name": "test_a",
            "fullname": "benchmarks/test_a.py::test_a",
            "group": "alpha",
            "stats": {"min": 0.1, "max": 0.2, "mean": 0.15, "stddev": 0.01,
                      "median": 0.15, "rounds": 5, "iterations": 2},
            "extra_info": {
                "speedup": 2.123456789,
                "executor": {"backend": "numpy", "max_workers": 8},
                "ratios": [1.04999999, 2.0],
            },
        },
    ],
}


class TestPerfTrajectory:
    def test_normalise_sorts_and_strips(self):
        rows = perf_trajectory.normalise_report(RAW_BENCHMARK)
        assert [row["name"] for row in rows] == sorted(row["name"] for row in rows)
        assert rows[0]["mean"] == 0.15
        assert "data" not in rows[0] and "data" not in rows[1]

    def test_extra_info_ratios_are_normalised(self):
        rows = perf_trajectory.normalise_report(RAW_BENCHMARK)
        assert rows[0]["extra_info"] == {
            "executor": {"backend": "numpy", "max_workers": 8},
            "ratios": [1.05, 2.0],
            "speedup": 2.1235,
        }
        assert "extra_info" not in rows[1]  # none recorded

    def test_gate_ratio_summary_promotes_ratio_keys(self):
        rows = perf_trajectory.normalise_report(RAW_BENCHMARK)
        rows[0]["extra_info"]["notify_speedup"] = 12.5
        summary = perf_trajectory.gate_ratio_summary(rows)
        # Only scalar *speedup/*ratio keys are promoted, keyed by test name;
        # the list-valued "ratios" and the executor config stay out.
        assert summary == {"test_a": {"notify_speedup": 12.5, "speedup": 2.1235}}

    def test_build_trajectory_carries_gate_ratios(self):
        trajectory = perf_trajectory.build_trajectory([RAW_BENCHMARK], run_id="9")
        assert trajectory["gate_ratios"] == {"test_a": {"speedup": 2.1235}}

    def test_build_trajectory_stamps_run(self):
        trajectory = perf_trajectory.build_trajectory(
            [RAW_BENCHMARK], run_id="123", commit="abc", timestamp="2026-01-01T00:00:00Z"
        )
        assert trajectory["schema"] == perf_trajectory.SCHEMA_VERSION
        assert trajectory["run_id"] == "123"
        assert trajectory["commit"] == "abc"
        assert trajectory["num_benchmarks"] == 2
        assert trajectory["machine"]["python_version"] == "3.12.0"
        assert trajectory["machine"]["cpu_count"] == 8

    def test_empty_reports(self):
        trajectory = perf_trajectory.build_trajectory([], run_id="0")
        assert trajectory["num_benchmarks"] == 0
        assert trajectory["machine"] == {}

    def test_main_writes_bench_artifact(self, tmp_path, capsys):
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(RAW_BENCHMARK))
        out = tmp_path / "artifacts"
        code = perf_trajectory.main(
            [str(raw), "--run-id", "77", "--commit", "deadbeef", "--out", str(out)]
        )
        assert code == 0
        artifact = out / "BENCH_77.json"
        assert artifact.exists()
        assert str(artifact) in capsys.readouterr().out
        payload = json.loads(artifact.read_text())
        assert payload["run_id"] == "77"
        assert len(payload["benchmarks"]) == 2

    def test_main_missing_report(self, tmp_path):
        code = perf_trajectory.main(
            [str(tmp_path / "nope.json"), "--run-id", "1", "--out", str(tmp_path)]
        )
        assert code == 2


COVERAGE_PAYLOAD = {
    "files": {
        "src/repro/cli.py": {"summary": {"num_statements": 100, "missing_lines": 10}},
        "src/repro/engine/cache.py": {
            "summary": {"num_statements": 50, "missing_lines": 0}
        },
        "src/repro/engine/plans.py": {
            "summary": {"num_statements": 50, "missing_lines": 25}
        },
        "src/repro/corpus/engine.py": {
            "summary": {"num_statements": 200, "missing_lines": 20}
        },
    }
}


class TestCoverageTable:
    def test_package_of(self):
        assert coverage_table.package_of("src/repro/engine/cache.py") == "repro.engine"
        assert coverage_table.package_of("src/repro/cli.py") == "repro"
        assert (
            coverage_table.package_of("src/repro/corpus/sharding.py") == "repro.corpus"
        )

    def test_rows_aggregate_per_package(self):
        rows = coverage_table.package_rows(COVERAGE_PAYLOAD)
        by_package = {row["package"]: row for row in rows}
        assert by_package["repro.engine"]["statements"] == 100
        assert by_package["repro.engine"]["missing"] == 25
        assert by_package["repro.engine"]["percent"] == 75.0
        assert by_package["repro.corpus"]["percent"] == 90.0
        assert by_package["TOTAL"]["statements"] == 400
        assert by_package["TOTAL"]["missing"] == 55

    def test_format_table_alignment(self):
        table = coverage_table.format_table(
            coverage_table.package_rows(COVERAGE_PAYLOAD)
        )
        lines = table.splitlines()
        assert lines[0].split() == ["package", "stmts", "miss", "cover"]
        assert lines[-1].startswith("TOTAL")
        assert "86.2%" in lines[-1]  # 345/400

    def test_main_prints_table(self, tmp_path, capsys):
        report = tmp_path / "coverage.json"
        report.write_text(json.dumps(COVERAGE_PAYLOAD))
        assert coverage_table.main([str(report)]) == 0
        output = capsys.readouterr().out
        assert "repro.corpus" in output and "TOTAL" in output

    def test_main_missing_report(self, tmp_path):
        assert coverage_table.main([str(tmp_path / "nope.json")]) == 2


docstring_coverage = load_script("docstring_coverage")
check_markdown_links = load_script("check_markdown_links")


class _DocumentedClass:
    """A class with a real docstring, long enough to count."""

    def documented(self):
        """This method is documented well enough to pass the gate."""

    def undocumented(self):
        pass

    @property
    def documented_property(self):
        """A documented property of the documented class."""
        return 1


def _documented_function():
    """A documented module-level function for the coverage walker."""


class _FakePackage:
    __all__ = ["Documented", "documented_function", "DATA_CONSTANT"]
    Documented = _DocumentedClass
    documented_function = staticmethod(_documented_function)
    DATA_CONSTANT = ("plain", "data")


class TestDocstringCoverage:
    def test_collect_symbols_walks_classes_and_skips_data(self):
        rows, skipped = docstring_coverage.collect_symbols(_FakePackage)
        names = dict(rows)
        assert names["Documented"] is True
        assert names["Documented.documented"] is True
        assert names["Documented.undocumented"] is False
        assert names["Documented.documented_property"] is True
        assert names["documented_function"] is True
        assert skipped == ["DATA_CONSTANT"]

    def test_coverage_report_percent_and_missing(self):
        report = docstring_coverage.coverage_report(
            [("a", True), ("b", True), ("c", False), ("d", True)]
        )
        assert report["total"] == 4
        assert report["documented"] == 3
        assert report["percent"] == 75.0
        assert report["missing"] == ["c"]

    def test_trivial_docstrings_count_as_missing(self):
        class Stub:
            """x"""

        assert not docstring_coverage._documented(Stub)

    def test_main_passes_on_the_real_public_api(self, capsys):
        # The repo's own gate: the public API must stay >= 95% documented.
        assert docstring_coverage.main(["--min", "95"]) == 0
        assert "docstring coverage" in capsys.readouterr().out

    def test_main_fails_below_threshold(self, capsys):
        code = docstring_coverage.main(["--min", "100.1"])
        assert code == 1
        assert "below" in capsys.readouterr().err

    def test_main_unknown_package(self):
        assert docstring_coverage.main(["--package", "no_such_pkg_xyz"]) == 2


class TestMarkdownLinkCheck:
    def test_extract_links(self):
        text = "See [docs](docs/a.md), [site](https://x.y) and [top](#anchor)."
        assert check_markdown_links.extract_links(text) == [
            "docs/a.md", "https://x.y", "#anchor",
        ]

    def test_broken_links_resolved_relative_to_file(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "real.md").write_text("# real")
        readme = tmp_path / "README.md"
        readme.write_text(
            "[ok](docs/real.md) [anchored](docs/real.md#sec) "
            "[gone](docs/missing.md) [web](https://example.com) [self](#top)"
        )
        assert check_markdown_links.broken_links(readme) == ["docs/missing.md"]

    def test_find_markdown_files_excludes_git(self, tmp_path):
        (tmp_path / ".git").mkdir()
        (tmp_path / ".git" / "x.md").write_text("hidden")
        (tmp_path / "a.md").write_text("visible")
        found = check_markdown_links.find_markdown_files(tmp_path)
        assert [p.name for p in found] == ["a.md"]

    def test_main_reports_broken_and_fails(self, tmp_path, capsys):
        (tmp_path / "a.md").write_text("[dead](nope.md)")
        assert check_markdown_links.main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "broken link -> nope.md" in out

    def test_main_passes_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "a.md").write_text("[ok](b.md)")
        (tmp_path / "b.md").write_text("# b")
        assert check_markdown_links.main(["--root", str(tmp_path)]) == 0
        assert "0 broken" in capsys.readouterr().out

    def test_main_missing_root(self, tmp_path):
        assert check_markdown_links.main(["--root", str(tmp_path / "no")]) == 2
