"""Tests for the twig-query model and parser."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError, TwigParseError
from repro.query.parser import parse_twig
from repro.query.twig import AXIS_CHILD, AXIS_DESCENDANT, TwigNode, TwigQuery


class TestTwigNode:
    def test_axis_validated(self):
        with pytest.raises(QueryError):
            TwigNode("Order", axis="sibling")

    def test_empty_label_rejected(self):
        with pytest.raises(QueryError):
            TwigNode("")

    def test_add_child_sets_parent(self):
        root = TwigNode("Order")
        child = root.add_child(TwigNode("Buyer"))
        assert child.parent is root
        assert root.children == [child]

    def test_iter_subtree_preorder(self):
        root = TwigNode("A")
        b = root.add_child(TwigNode("B"))
        b.add_child(TwigNode("C"))
        root.add_child(TwigNode("D"))
        assert [n.label for n in root.iter_subtree()] == ["A", "B", "C", "D"]


class TestTwigQuery:
    def test_node_ids_preorder(self):
        query = parse_twig("Order/Buyer/Name")
        assert [node.node_id for node in query.nodes] == [0, 1, 2]
        assert query.get(1).label == "Buyer"

    def test_get_unknown_id(self):
        query = parse_twig("Order")
        with pytest.raises(QueryError):
            query.get(7)

    def test_output_node_is_last_main_path_step(self):
        query = parse_twig("Order/Line[./Quantity]/Price")
        assert query.output_node.label == "Price"

    def test_labels(self):
        query = parse_twig("Order/Buyer")
        assert query.labels() == ["Order", "Buyer"]

    def test_subquery_preserves_node_ids(self):
        query = parse_twig("Order/Line[./Quantity]/Price")
        line = query.get(1)
        sub = query.subquery(line)
        assert sub.root is line
        assert {node.node_id for node in sub.nodes} <= {node.node_id for node in query.nodes}
        assert sub.get(line.node_id) is line


class TestParser:
    def test_simple_path(self):
        query = parse_twig("Order/Buyer/Name")
        assert len(query) == 3
        assert query.root.label == "Order"
        assert query.root.axis == AXIS_CHILD
        assert query.get(2).axis == AXIS_CHILD

    def test_descendant_axis(self):
        query = parse_twig("Order//Name")
        assert query.get(1).axis == AXIS_DESCENDANT

    def test_leading_descendant_axis(self):
        query = parse_twig("//InvoiceParty//ContactName")
        assert query.root.axis == AXIS_DESCENDANT
        assert query.get(1).axis == AXIS_DESCENDANT

    def test_leading_child_axis(self):
        query = parse_twig("/Order/Buyer")
        assert query.root.axis == AXIS_CHILD

    def test_predicates_become_branches(self):
        query = parse_twig("Order/Address[./City][./Country]/Street")
        address = query.get(1)
        assert address.label == "Address"
        labels = sorted(child.label for child in address.children)
        assert labels == ["City", "Country", "Street"]
        city = next(child for child in address.children if child.label == "City")
        assert not city.on_main_path
        street = next(child for child in address.children if child.label == "Street")
        assert street.on_main_path

    def test_predicate_descendant_axis(self):
        query = parse_twig("Order/Line[.//UnitPrice]/Quantity")
        line = query.get(1)
        unit_price = next(child for child in line.children if child.label == "UnitPrice")
        assert unit_price.axis == AXIS_DESCENDANT

    def test_predicate_without_dot(self):
        query = parse_twig("Order/Line[//UnitPrice]/Quantity")
        line = query.get(1)
        unit_price = next(child for child in line.children if child.label == "UnitPrice")
        assert unit_price.axis == AXIS_DESCENDANT

    def test_nested_predicates(self):
        query = parse_twig("Order[./DeliverTo[.//EMail]//Street]/Line")
        deliver = next(child for child in query.root.children if child.label == "DeliverTo")
        child_labels = {child.label for child in deliver.children}
        assert child_labels == {"EMail", "Street"}

    def test_predicate_path_with_multiple_steps(self):
        query = parse_twig("Order/DeliverTo[./Address/City]/Contact")
        deliver = query.get(1)
        address = next(child for child in deliver.children if child.label == "Address")
        assert [child.label for child in address.children] == ["City"]

    def test_value_predicate(self):
        query = parse_twig('Order/Buyer[./Name = "Acme"]/Contact')
        buyer = query.get(1)
        name = next(child for child in buyer.children if child.label == "Name")
        assert name.value == "Acme"

    def test_self_value_predicate(self):
        query = parse_twig("Order/City[. = 'Berlin']")
        city = query.get(1)
        assert city.label == "City"
        assert city.value == "Berlin"
        assert city.is_leaf

    def test_aliases_expanded(self):
        query = parse_twig("Order/POLine//UP", aliases={"UP": "UnitPrice"})
        assert query.get(2).label == "UnitPrice"

    def test_whitespace_tolerated(self):
        query = parse_twig("  Order / Buyer [ ./Name ] / Contact  ")
        assert len(query) == 4

    def test_text_preserved(self):
        assert parse_twig("Order/Buyer").text == "Order/Buyer"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "Order/",
            "/",
            "Order[",
            "Order[./City",
            "Order]",
            "Order[./City = Berlin]",   # unquoted value
            "Order[./City = 'Berlin]",  # unterminated string
            "Order//",
            "Order trailing",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(TwigParseError):
            parse_twig(bad)

    def test_paper_queries_parse(self):
        from repro.workloads.queries import QUERY_ALIASES, QUERY_STRINGS

        for text in QUERY_STRINGS.values():
            query = parse_twig(text, aliases=QUERY_ALIASES)
            assert len(query) >= 2
