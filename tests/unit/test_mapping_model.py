"""Tests for :class:`Mapping` and :class:`MappingSet`."""

from __future__ import annotations

import pytest

from repro.exceptions import MappingError
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.schema.parser import parse_schema


@pytest.fixture()
def matching():
    source = parse_schema("S\n  a\n  b\n  c\n", name="src")
    target = parse_schema("T\n  x\n  y\n", name="tgt")
    m = SchemaMatching(source, target, name="toy")
    m.add_pair(0, 0, 0.9)   # S ~ T
    m.add_pair(1, 1, 0.8)   # a ~ x
    m.add_pair(2, 1, 0.7)   # b ~ x
    m.add_pair(1, 2, 0.6)   # a ~ y
    m.add_pair(3, 2, 0.5)   # c ~ y
    return m


class TestMapping:
    def test_basic_properties(self):
        mapping = Mapping(0, frozenset({(1, 1), (3, 2)}), score=1.3)
        assert len(mapping) == 2
        assert (1, 1) in mapping
        assert mapping.source_ids() == {1, 3}
        assert mapping.target_ids() == {1, 2}
        assert mapping.source_for_target(1) == 1
        assert mapping.source_for_target(99) is None

    def test_covers_targets(self):
        mapping = Mapping(0, frozenset({(1, 1), (3, 2)}), score=1.0)
        assert mapping.covers_targets({1, 2})
        assert not mapping.covers_targets({1, 2, 5})
        assert mapping.covers_targets([])

    def test_one_to_one_enforced_on_targets(self):
        with pytest.raises(MappingError):
            Mapping(0, frozenset({(1, 1), (2, 1)}), score=1.0)

    def test_one_to_one_enforced_on_sources(self):
        with pytest.raises(MappingError):
            Mapping(0, frozenset({(1, 1), (1, 2)}), score=1.0)

    def test_negative_score_rejected(self):
        with pytest.raises(MappingError):
            Mapping(0, frozenset({(1, 1)}), score=-1.0)

    def test_probability_bounds(self):
        with pytest.raises(MappingError):
            Mapping(0, frozenset({(1, 1)}), score=1.0, probability=1.5)

    def test_overlap_ratio(self):
        a = Mapping(0, frozenset({(1, 1), (3, 2)}), score=1.0)
        b = Mapping(1, frozenset({(1, 1), (2, 2)}), score=1.0)
        assert a.overlap_ratio(b) == pytest.approx(1 / 3)
        assert a.overlap_ratio(a) == 1.0

    def test_overlap_ratio_empty(self):
        empty = Mapping(0, frozenset(), score=0.0)
        assert empty.overlap_ratio(empty) == 1.0

    def test_with_probability(self):
        mapping = Mapping(3, frozenset({(1, 1)}), score=2.0)
        updated = mapping.with_probability(0.25)
        assert updated.probability == 0.25
        assert updated.mapping_id == 3
        assert updated.correspondences == mapping.correspondences

    def test_empty_mapping_allowed(self):
        mapping = Mapping(0, frozenset(), score=0.0)
        assert len(mapping) == 0


class TestMappingSet:
    def _mappings(self):
        return [
            Mapping(0, frozenset({(0, 0), (1, 1), (3, 2)}), score=2.0),
            Mapping(1, frozenset({(0, 0), (2, 1), (1, 2)}), score=1.5),
            Mapping(2, frozenset({(0, 0), (1, 1)}), score=0.5),
        ]

    def test_normalization(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        assert sum(m.probability for m in mapping_set) == pytest.approx(1.0)
        assert mapping_set[0].probability == pytest.approx(0.5)

    def test_probabilities_proportional_to_scores(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        assert mapping_set[0].probability > mapping_set[1].probability > mapping_set[2].probability

    def test_empty_set_rejected(self, matching):
        with pytest.raises(MappingError):
            MappingSet(matching, [])

    def test_ids_must_be_positions(self, matching):
        bad = [Mapping(5, frozenset({(0, 0)}), score=1.0)]
        with pytest.raises(MappingError):
            MappingSet(matching, bad)

    def test_unknown_correspondence_rejected(self, matching):
        bad = [Mapping(0, frozenset({(3, 0)}), score=1.0)]
        with pytest.raises(MappingError):
            MappingSet(matching, bad)

    def test_unnormalized_probabilities_validated(self, matching):
        mappings = [m.with_probability(0.2) for m in self._mappings()]
        with pytest.raises(MappingError):
            MappingSet(matching, mappings, normalize=False)

    def test_all_zero_scores_fall_back_to_uniform(self, matching):
        mappings = [
            Mapping(0, frozenset(), score=0.0),
            Mapping(1, frozenset(), score=0.0),
        ]
        mapping_set = MappingSet(matching, mappings)
        assert [m.probability for m in mapping_set] == [0.5, 0.5]

    def test_mappings_with_pair(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        assert mapping_set.mappings_with_pair((1, 1)) == {0, 2}
        assert mapping_set.mappings_with_pair((9, 9)) == set()

    def test_relevant_mappings(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        relevant = mapping_set.relevant_mappings([1, 2])
        assert {m.mapping_id for m in relevant} == {0, 1}

    def test_top_k_by_probability(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        top = mapping_set.top_k_by_probability(2)
        assert [m.mapping_id for m in top] == [0, 1]
        with pytest.raises(MappingError):
            mapping_set.top_k_by_probability(0)

    def test_o_ratio_range_and_value(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        value = mapping_set.o_ratio()
        assert 0.0 < value < 1.0

    def test_o_ratio_single_mapping(self, matching):
        mapping_set = MappingSet(matching, [Mapping(0, frozenset({(0, 0)}), score=1.0)])
        assert mapping_set.o_ratio() == 1.0

    def test_naive_storage_grows_with_correspondences(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        small = MappingSet(matching, [Mapping(0, frozenset({(0, 0)}), score=1.0)])
        assert mapping_set.naive_storage_bytes() > small.naive_storage_bytes()

    def test_describe(self, matching):
        info = MappingSet(matching, self._mappings()).describe()
        assert info["num_mappings"] == 3
        assert info["max_size"] == 3
        assert 0.0 <= info["o_ratio"] <= 1.0

    def test_getitem_and_iteration(self, matching):
        mapping_set = MappingSet(matching, self._mappings())
        assert mapping_set[1].mapping_id == 1
        assert len(list(mapping_set)) == 3
