"""Tests for the length-prefixed binary framing (``repro.net.framing``)."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.api import PayloadTooLargeError, ProtocolError
from repro.net.framing import (
    DEFAULT_MAX_PAYLOAD,
    FRAMING_VERSION,
    HEADER,
    HEADER_SIZE,
    MAGIC,
    OP_ERROR,
    OP_PING,
    OP_PONG,
    OP_REQUEST,
    OP_RESPONSE,
    OP_STREAM_END,
    OP_STREAM_ITEM,
    OPCODES,
    decode_header,
    encode_frame,
    read_frame,
)


def feed(*chunks: bytes) -> asyncio.StreamReader:
    """A StreamReader pre-loaded with ``chunks`` and a trailing EOF.

    Must be called from inside a running event loop (StreamReader binds to
    the current loop on construction).
    """
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


def read_one(*chunks: bytes, **kwargs):
    async def run():
        return await read_frame(feed(*chunks), **kwargs)

    return asyncio.run(run())


class TestEncodeDecode:
    def test_header_layout(self):
        frame = encode_frame(OP_REQUEST, b"abc")
        assert len(frame) == HEADER_SIZE + 3
        magic, version, opcode, reserved, length = HEADER.unpack(frame[:HEADER_SIZE])
        assert magic == MAGIC
        assert version == FRAMING_VERSION
        assert opcode == OP_REQUEST
        assert reserved == 0
        assert length == 3
        assert frame[HEADER_SIZE:] == b"abc"

    def test_empty_payload(self):
        opcode, length = decode_header(
            encode_frame(OP_PING)[:HEADER_SIZE], max_payload=DEFAULT_MAX_PAYLOAD
        )
        assert opcode == OP_PING
        assert length == 0

    @pytest.mark.parametrize("opcode", sorted(OPCODES))
    def test_all_opcodes_round_trip(self, opcode):
        frame = encode_frame(opcode, b"x")
        got, length = decode_header(frame[:HEADER_SIZE], max_payload=64)
        assert got == opcode
        assert length == 1

    def test_opcode_values_are_stable(self):
        """Wire compatibility: these numbers are part of the protocol."""
        assert (OP_REQUEST, OP_RESPONSE, OP_ERROR) == (1, 2, 3)
        assert (OP_STREAM_ITEM, OP_STREAM_END) == (4, 5)
        assert (OP_PING, OP_PONG) == (6, 7)


class TestHeaderRejection:
    def test_short_header(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_header(b"RPRO", max_payload=64)

    def test_bad_magic(self):
        frame = bytearray(encode_frame(OP_PING))
        frame[:4] = b"HTTP"
        with pytest.raises(ProtocolError, match="magic"):
            decode_header(bytes(frame[:HEADER_SIZE]), max_payload=64)

    def test_bad_version(self):
        header = HEADER.pack(MAGIC, FRAMING_VERSION + 1, OP_PING, 0, 0)
        with pytest.raises(ProtocolError, match="version"):
            decode_header(header, max_payload=64)

    def test_bad_opcode(self):
        header = HEADER.pack(MAGIC, FRAMING_VERSION, 99, 0, 0)
        with pytest.raises(ProtocolError, match="opcode"):
            decode_header(header, max_payload=64)

    def test_nonzero_reserved(self):
        header = HEADER.pack(MAGIC, FRAMING_VERSION, OP_PING, 7, 0)
        with pytest.raises(ProtocolError, match="reserved"):
            decode_header(header, max_payload=64)

    def test_oversized_payload(self):
        header = HEADER.pack(MAGIC, FRAMING_VERSION, OP_REQUEST, 0, 65)
        with pytest.raises(PayloadTooLargeError):
            decode_header(header, max_payload=64)

    def test_payload_at_cap_is_accepted(self):
        header = HEADER.pack(MAGIC, FRAMING_VERSION, OP_REQUEST, 0, 64)
        assert decode_header(header, max_payload=64) == (OP_REQUEST, 64)


class TestReadFrame:
    def test_reads_a_frame(self):
        got = read_one(encode_frame(OP_REQUEST, b"hello"), max_payload=64)
        assert got == (OP_REQUEST, b"hello")

    def test_reads_consecutive_frames(self):
        async def run():
            reader = feed(encode_frame(OP_PING), encode_frame(OP_REQUEST, b"x"))
            first = await read_frame(reader, max_payload=64)
            second = await read_frame(reader, max_payload=64)
            third = await read_frame(reader, max_payload=64)
            return first, second, third

        first, second, third = asyncio.run(run())
        assert first == (OP_PING, b"")
        assert second == (OP_REQUEST, b"x")
        assert third is None  # clean EOF between frames

    def test_clean_eof_returns_none(self):
        assert read_one(max_payload=64) is None

    def test_eof_mid_header_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            read_one(encode_frame(OP_PING)[:5], max_payload=64)

    def test_eof_mid_payload_is_protocol_error(self):
        frame = encode_frame(OP_REQUEST, b"hello")
        with pytest.raises(ProtocolError):
            read_one(frame[:-2], max_payload=64)

    def test_first_bytes_carry(self):
        """A peeked prefix (protocol sniffing) is stitched back in."""
        frame = encode_frame(OP_REQUEST, b"carry")
        got = read_one(frame[4:], max_payload=64, first_bytes=frame[:4])
        assert got == (OP_REQUEST, b"carry")

    def test_oversized_frame_rejected_before_payload_read(self):
        header = HEADER.pack(MAGIC, FRAMING_VERSION, OP_REQUEST, 0, 2**20)
        with pytest.raises(PayloadTooLargeError):
            read_one(header, max_payload=64)  # no payload bytes at all
