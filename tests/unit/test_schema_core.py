"""Tests for :mod:`repro.schema.element` and :mod:`repro.schema.schema`."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.schema.schema import Schema


@pytest.fixture()
def small_schema():
    schema = Schema("small")
    order = schema.add_root("Order")
    buyer = schema.add_child(order, "Buyer")
    contact = schema.add_child(buyer, "Contact")
    schema.add_child(contact, "Name")
    schema.add_child(contact, "EMail")
    line = schema.add_child(order, "Line", repeatable=True)
    schema.add_child(line, "Quantity")
    schema.add_child(line, "Price")
    return schema


class TestSchemaConstruction:
    def test_root_properties(self, small_schema):
        root = small_schema.root
        assert root.is_root
        assert root.depth == 0
        assert root.path == "Order"

    def test_child_path_and_depth(self, small_schema):
        name = small_schema.element_by_path("Order.Buyer.Contact.Name")
        assert name.depth == 3
        assert name.is_leaf
        assert name.parent.label == "Contact"

    def test_element_ids_are_creation_order(self, small_schema):
        ids = [element.element_id for element in small_schema]
        assert ids == list(range(len(small_schema)))

    def test_len_counts_all_elements(self, small_schema):
        assert len(small_schema) == 8

    def test_duplicate_root_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.add_root("Another")

    def test_duplicate_path_rejected(self, small_schema):
        contact = small_schema.element_by_path("Order.Buyer.Contact")
        with pytest.raises(SchemaError):
            small_schema.add_child(contact, "Name")

    def test_foreign_parent_rejected(self, small_schema):
        other = Schema("other")
        foreign_root = other.add_root("Order")
        with pytest.raises(SchemaError):
            small_schema.add_child(foreign_root, "X")

    def test_repeatable_flag_stored(self, small_schema):
        assert small_schema.element_by_path("Order.Line").repeatable
        assert not small_schema.element_by_path("Order.Buyer").repeatable

    def test_freeze_prevents_modification(self, small_schema):
        small_schema.freeze()
        assert small_schema.frozen
        with pytest.raises(SchemaError):
            small_schema.add_child(small_schema.root, "New")

    def test_freeze_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("empty").freeze()


class TestSchemaLookup:
    def test_get_by_id(self, small_schema):
        element = small_schema.element_by_path("Order.Line.Quantity")
        assert small_schema.get(element.element_id) is element

    def test_get_unknown_id(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.get(999)

    def test_element_by_unknown_path(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.element_by_path("Order.Nope")

    def test_has_path(self, small_schema):
        assert small_schema.has_path("Order.Buyer")
        assert not small_schema.has_path("Order.Seller")

    def test_elements_by_label(self, small_schema):
        assert len(small_schema.elements_by_label("Quantity")) == 1
        assert small_schema.elements_by_label("Missing") == []

    def test_labels(self, small_schema):
        assert "Order" in small_schema.labels()
        assert "EMail" in small_schema.labels()

    def test_contains(self, small_schema):
        element = small_schema.element_by_path("Order.Buyer")
        assert element in small_schema
        assert "Order.Buyer" not in small_schema  # strings are never members

    def test_contains_foreign_element(self, small_schema):
        other = Schema("other")
        foreign = other.add_root("Order")
        assert foreign not in small_schema


class TestTraversal:
    def test_preorder_starts_at_root(self, small_schema):
        order = [element.label for element in small_schema.iter_preorder()]
        assert order[0] == "Order"
        assert len(order) == len(small_schema)

    def test_postorder_ends_at_root(self, small_schema):
        order = [element.label for element in small_schema.iter_postorder()]
        assert order[-1] == "Order"
        assert sorted(order) == sorted(e.label for e in small_schema)

    def test_postorder_children_before_parent(self, small_schema):
        labels = [element.label for element in small_schema.iter_postorder()]
        assert labels.index("Name") < labels.index("Contact")
        assert labels.index("Contact") < labels.index("Buyer")

    def test_leaves(self, small_schema):
        assert {leaf.label for leaf in small_schema.leaves()} == {
            "Name", "EMail", "Quantity", "Price",
        }

    def test_depth_and_fanout(self, small_schema):
        assert small_schema.depth() == 3
        assert small_schema.max_fanout() == 2

    def test_filter_elements(self, small_schema):
        repeatable = small_schema.filter_elements(lambda e: e.repeatable)
        assert [e.label for e in repeatable] == ["Line"]

    def test_subtree_paths(self, small_schema):
        line = small_schema.element_by_path("Order.Line")
        assert set(small_schema.subtree_paths(line)) == {
            "Order.Line", "Order.Line.Quantity", "Order.Line.Price",
        }


class TestElementRelations:
    def test_iter_subtree_counts(self, small_schema):
        buyer = small_schema.element_by_path("Order.Buyer")
        assert buyer.subtree_size() == 4

    def test_iter_descendants_excludes_self(self, small_schema):
        buyer = small_schema.element_by_path("Order.Buyer")
        labels = [element.label for element in buyer.iter_descendants()]
        assert "Buyer" not in labels
        assert "Name" in labels

    def test_iter_ancestors(self, small_schema):
        name = small_schema.element_by_path("Order.Buyer.Contact.Name")
        assert [a.label for a in name.iter_ancestors()] == ["Contact", "Buyer", "Order"]

    def test_ancestor_descendant_checks(self, small_schema):
        order = small_schema.root
        name = small_schema.element_by_path("Order.Buyer.Contact.Name")
        line = small_schema.element_by_path("Order.Line")
        assert order.is_ancestor_of(name)
        assert name.is_descendant_of(order)
        assert not line.is_ancestor_of(name)
        assert not name.is_ancestor_of(name)

    def test_fanout(self, small_schema):
        assert small_schema.root.fanout == 2
        assert small_schema.element_by_path("Order.Line.Price").fanout == 0

    def test_equality_and_repr(self, small_schema):
        buyer = small_schema.element_by_path("Order.Buyer")
        assert buyer == small_schema.get(buyer.element_id)
        assert "Order.Buyer" in repr(buyer)


class TestValidation:
    def test_validate_passes_on_well_formed(self, small_schema):
        small_schema.validate()

    def test_validate_detects_missing_root(self):
        with pytest.raises(SchemaError):
            Schema("empty").validate()

    def test_validate_detects_detached_child(self, small_schema):
        buyer = small_schema.element_by_path("Order.Buyer")
        small_schema.root.children.remove(buyer)
        with pytest.raises(SchemaError):
            small_schema.validate()
        small_schema.root.children.insert(0, buyer)
