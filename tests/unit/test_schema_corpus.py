"""Tests for label casing, the concept ontology and the synthetic corpus."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.schema.concepts import EXTENSION_MODULES, master_concept_tree, module_field_tokens
from repro.schema.corpus import SCHEMA_NAMES, SCHEMA_SIZES, available_schemas, load_corpus_schema
from repro.schema.naming import CASING_STYLES, render_label


class TestRenderLabel:
    def test_camel(self):
        assert render_label(("unit", "price"), "camel") == "UnitPrice"

    def test_camel_preserves_acronyms(self):
        assert render_label(("PO", "line"), "camel") == "POLine"
        assert render_label(("buyer", "part", "ID"), "camel") == "BuyerPartID"

    def test_upper_snake(self):
        assert render_label(("unit", "price"), "upper_snake") == "UNIT_PRICE"

    def test_lower_camel(self):
        assert render_label(("unit", "price"), "lower_camel") == "unitPrice"

    def test_title_snake(self):
        assert render_label(("unit", "price"), "title_snake") == "Unit_Price"

    def test_single_token(self):
        assert render_label(("order",), "camel") == "Order"

    def test_empty_tokens_rejected(self):
        with pytest.raises(ValueError):
            render_label((), "camel")

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            render_label(("a",), "shouty")

    def test_all_styles_listed(self):
        for style in CASING_STYLES:
            assert render_label(("tax", "rate"), style)


class TestConceptTree:
    def test_root_is_order(self):
        root = master_concept_tree()
        assert root.tokens == ("order",)

    def test_contains_core_groups(self):
        root = master_concept_tree()
        groups = {concept.group for concept in root.iter_subtree()}
        assert {"header", "party.buyer", "party.deliver", "lines", "tax"} <= groups

    def test_keys_unique(self):
        root = master_concept_tree()
        keys = [concept.key for concept in root.iter_subtree()]
        assert len(keys) == len(set(keys))

    def test_po_line_repeatable(self):
        root = master_concept_tree()
        line = next(c for c in root.iter_subtree() if c.key == "order.po_line")
        assert line.repeatable

    def test_synonyms_override_tokens(self):
        root = master_concept_tree()
        deliver = next(c for c in root.iter_subtree() if c.key == "order.deliver_to")
        assert deliver.tokens_for("apertum") == ("deliver", "to")
        assert deliver.tokens_for("xcbl") == ("ship", "to", "party")

    def test_module_field_tokens_cycles(self):
        assert module_field_tokens(0) == module_field_tokens(len(EXTENSION_MODULES) * 0 + 0)
        assert isinstance(module_field_tokens(3), tuple)

    def test_extension_modules_well_formed(self):
        for tokens, fields in EXTENSION_MODULES:
            assert tokens and all(isinstance(t, str) for t in tokens)
            assert fields > 0


class TestCorpus:
    def test_available_schemas(self):
        assert set(available_schemas()) == set(SCHEMA_NAMES)
        assert "xcbl" in SCHEMA_NAMES

    @pytest.mark.parametrize("standard", SCHEMA_NAMES)
    def test_sizes_match_table2(self, standard):
        schema = load_corpus_schema(standard)
        assert len(schema) == SCHEMA_SIZES[standard]

    @pytest.mark.parametrize("standard", SCHEMA_NAMES)
    def test_schemas_validate(self, standard):
        load_corpus_schema(standard).validate()

    def test_alias_ot(self):
        assert load_corpus_schema("OT") is load_corpus_schema("opentrans")

    def test_unknown_standard_rejected(self):
        with pytest.raises(DatasetError):
            load_corpus_schema("sap")

    def test_deterministic(self):
        first = load_corpus_schema("apertum")
        second = load_corpus_schema("apertum")
        assert first is second  # cached
        rebuilt = load_corpus_schema("apertum", seed=12345)
        assert len(rebuilt) == len(first)

    def test_apertum_has_query_labels(self):
        schema = load_corpus_schema("apertum")
        for label in ("Order", "DeliverTo", "POLine", "LineNo", "UnitPrice",
                      "Quantity", "BuyerPartID", "Street", "City", "EMail"):
            assert schema.elements_by_label(label), f"missing label {label}"

    def test_opentrans_uses_upper_snake(self):
        schema = load_corpus_schema("opentrans")
        labels = schema.labels()
        assert any("_" in label and label.isupper() for label in labels)

    def test_xcbl_has_repeatable_line_item(self):
        schema = load_corpus_schema("xcbl")
        lines = schema.elements_by_label("LineItemDetail")
        assert lines and lines[0].repeatable

    def test_schemas_are_frozen(self):
        assert load_corpus_schema("cidx").frozen

    def test_large_schemas_share_extension_vocabulary(self):
        xcbl = load_corpus_schema("xcbl")
        opentrans = load_corpus_schema("opentrans")
        xcbl_tokens = {label.lower().replace("_", "") for label in xcbl.labels()}
        ot_tokens = {label.lower().replace("_", "") for label in opentrans.labels()}
        # Shared padding modules mean the two large schemas have many labels
        # in common modulo casing, which is what drives the big capacities of
        # the XCBL/OpenTrans matchings in Table II.
        assert len(xcbl_tokens & ot_tokens) > 30
