"""Tests for Murty ranking, partitioning and top-h mapping generation."""

from __future__ import annotations

import itertools

import pytest

from repro.exceptions import AssignmentError, MappingError
from repro.mapping.bipartite import BipartiteGraph
from repro.mapping.generator import GenerationMethod, generate_top_h_mappings, mapping_set_from_ranking
from repro.mapping.murty import rank_graph_murty, rank_mappings_murty
from repro.mapping.partition import merge_rankings, partition_matching, rank_mappings_partitioned
from repro.matching.matching import SchemaMatching
from repro.schema.parser import parse_schema
from repro.workloads.datasets import load_dataset


def brute_force_rank(graph: BipartiteGraph, h: int):
    """Enumerate every one-to-one edge subset and rank by total weight."""
    edges = sorted(graph.weights)
    mappings = []
    for size in range(len(edges) + 1):
        for subset in itertools.combinations(edges, size):
            sources = [s for s, _ in subset]
            targets = [t for _, t in subset]
            if len(set(sources)) == len(sources) and len(set(targets)) == len(targets):
                score = sum(graph.weights[e] for e in subset)
                mappings.append((score, frozenset(subset)))
    mappings.sort(key=lambda item: (-item[0], sorted(item[1])))
    return mappings[:h]


@pytest.fixture()
def ambiguous_graph():
    weights = {
        (0, 0): 0.9,
        (1, 0): 0.8,
        (0, 1): 0.7,
        (2, 1): 0.6,
        (3, 2): 0.5,
    }
    return BipartiteGraph([0, 1, 2, 3], [0, 1, 2], weights)


@pytest.fixture()
def toy_matching():
    source = parse_schema("S\n  a\n  b\n  c\n  d\n", name="src")
    target = parse_schema("T\n  w\n  x\n  y\n  z\n", name="tgt")
    matching = SchemaMatching(source, target, name="toy")
    # Two disconnected partitions: {a,b} x {w,x} and {c,d} x {y,z}.
    matching.add_pair(1, 1, 0.9)
    matching.add_pair(2, 1, 0.7)
    matching.add_pair(1, 2, 0.6)
    matching.add_pair(3, 3, 0.8)
    matching.add_pair(4, 3, 0.5)
    matching.add_pair(4, 4, 0.4)
    return matching


class TestMurtyRanking:
    def test_scores_non_increasing(self, ambiguous_graph):
        ranking = rank_graph_murty(ambiguous_graph, 10, backend="python")
        scores = [score for score, _ in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_no_duplicate_mappings(self, ambiguous_graph):
        ranking = rank_graph_murty(ambiguous_graph, 15, backend="python")
        mappings = [edges for _, edges in ranking]
        assert len(mappings) == len(set(mappings))

    def test_matches_brute_force(self, ambiguous_graph):
        expected = brute_force_rank(ambiguous_graph, 8)
        actual = rank_graph_murty(ambiguous_graph, 8, backend="python")
        assert [round(s, 9) for s, _ in actual] == [round(s, 9) for s, _ in expected]

    def test_every_result_is_valid_mapping(self, ambiguous_graph):
        for _, edges in rank_graph_murty(ambiguous_graph, 10, backend="python"):
            sources = [s for s, _ in edges]
            targets = [t for _, t in edges]
            assert len(set(sources)) == len(sources)
            assert len(set(targets)) == len(targets)
            assert set(edges) <= set(ambiguous_graph.weights)

    def test_h_one_returns_optimum(self, ambiguous_graph):
        ranking = rank_graph_murty(ambiguous_graph, 1, backend="python")
        assert len(ranking) == 1
        assert ranking[0][0] == pytest.approx(0.9 + 0.6 + 0.5)

    def test_h_must_be_positive(self, ambiguous_graph):
        with pytest.raises(AssignmentError):
            rank_graph_murty(ambiguous_graph, 0)

    def test_enumerates_empty_mapping_when_h_large(self):
        graph = BipartiteGraph([0], [0], {(0, 0): 0.5})
        ranking = rank_graph_murty(graph, 5, backend="python")
        assert [edges for _, edges in ranking] == [frozenset({(0, 0)}), frozenset()]

    def test_initial_constraints(self, ambiguous_graph):
        ranking = rank_graph_murty(
            ambiguous_graph, 5, backend="python", initial_forbidden=[(0, 0)]
        )
        assert all((0, 0) not in edges for _, edges in ranking)

    def test_rank_mappings_full_vs_reduced(self, toy_matching):
        full = rank_mappings_murty(toy_matching, 6, full_bipartite=True, backend="python")
        reduced = rank_mappings_murty(toy_matching, 6, full_bipartite=False, backend="python")
        assert [round(s, 9) for s, _ in full] == [round(s, 9) for s, _ in reduced]


class TestPartitioning:
    def test_partition_count(self, toy_matching):
        partitions = partition_matching(toy_matching)
        assert len(partitions) == 2
        assert sum(p.num_edges for p in partitions) == toy_matching.capacity

    def test_partition_matches_paper_definition(self, toy_matching):
        # Partitions are maximal and disjoint (Definition 6): no element id
        # appears in two partitions.
        partitions = partition_matching(toy_matching)
        all_sources = list(itertools.chain.from_iterable(p.source_ids for p in partitions))
        all_targets = list(itertools.chain.from_iterable(p.target_ids for p in partitions))
        assert len(all_sources) == len(set(all_sources))
        assert len(all_targets) == len(set(all_targets))

    def test_merge_lazy_equals_exhaustive(self):
        first = [(3.0, frozenset({(1, 1)})), (2.0, frozenset({(2, 1)})), (0.0, frozenset())]
        second = [(1.5, frozenset({(3, 3)})), (0.0, frozenset())]
        lazy = merge_rankings(first, second, 4, strategy="lazy")
        exhaustive = merge_rankings(first, second, 4, strategy="exhaustive")
        assert [s for s, _ in lazy] == [s for s, _ in exhaustive]
        assert [e for _, e in lazy] == [e for _, e in exhaustive]

    def test_merge_empty_inputs(self):
        ranking = [(1.0, frozenset({(0, 0)}))]
        assert merge_rankings([], ranking, 3) == ranking
        assert merge_rankings(ranking, [], 3) == ranking

    def test_merge_invalid_arguments(self):
        ranking = [(1.0, frozenset({(0, 0)}))]
        with pytest.raises(MappingError):
            merge_rankings(ranking, ranking, 0)
        with pytest.raises(MappingError):
            merge_rankings(ranking, ranking, 3, strategy="magic")

    def test_partitioned_equals_murty(self, toy_matching):
        murty = rank_mappings_murty(toy_matching, 8, backend="python")
        partitioned = rank_mappings_partitioned(toy_matching, 8, backend="python")
        assert [round(s, 9) for s, _ in murty] == [round(s, 9) for s, _ in partitioned]

    def test_partitioned_h_must_be_positive(self, toy_matching):
        with pytest.raises(AssignmentError):
            rank_mappings_partitioned(toy_matching, 0)

    def test_empty_matching_gives_empty_mapping(self):
        source = parse_schema("S\n  a\n", name="src")
        target = parse_schema("T\n  x\n", name="tgt")
        matching = SchemaMatching(source, target)
        ranking = rank_mappings_partitioned(matching, 3)
        assert ranking == [(0.0, frozenset())]

    def test_corpus_dataset_is_sparse(self, d1_dataset):
        partitions = partition_matching(d1_dataset.matching)
        assert len(partitions) > 5
        largest = max(p.size for p in partitions)
        assert largest < d1_dataset.matching.capacity


class TestGenerateTopH:
    def test_mapping_set_built_and_normalised(self, toy_matching):
        mapping_set = generate_top_h_mappings(toy_matching, 5, method="partition")
        assert len(mapping_set) == 5
        assert sum(m.probability for m in mapping_set) == pytest.approx(1.0)
        scores = [m.score for m in mapping_set]
        assert scores == sorted(scores, reverse=True)

    def test_methods_agree_on_scores(self, toy_matching):
        partition = generate_top_h_mappings(toy_matching, 6, method="partition")
        murty = generate_top_h_mappings(toy_matching, 6, method=GenerationMethod.MURTY)
        assert [round(m.score, 9) for m in partition] == [round(m.score, 9) for m in murty]

    def test_invalid_h(self, toy_matching):
        with pytest.raises(MappingError):
            generate_top_h_mappings(toy_matching, 0)

    def test_invalid_method(self, toy_matching):
        with pytest.raises(ValueError):
            generate_top_h_mappings(toy_matching, 3, method="genetic")

    def test_mapping_ids_are_positions(self, toy_matching):
        mapping_set = generate_top_h_mappings(toy_matching, 4)
        assert [m.mapping_id for m in mapping_set] == [0, 1, 2, 3]

    def test_empty_ranking_rejected(self, toy_matching):
        with pytest.raises(MappingError):
            mapping_set_from_ranking(toy_matching, [])

    def test_exhaustive_merge_strategy_supported(self, toy_matching):
        lazy = generate_top_h_mappings(toy_matching, 5, merge_strategy="lazy")
        exhaustive = generate_top_h_mappings(toy_matching, 5, merge_strategy="exhaustive")
        assert [round(m.score, 9) for m in lazy] == [round(m.score, 9) for m in exhaustive]
