"""Tests for the similarity measures used by the matcher."""

from __future__ import annotations

import pytest

from repro.matching.similarity import (
    edit_similarity,
    levenshtein,
    name_similarity,
    normalize_tokens,
    path_similarity,
    token_set_similarity,
    tokenize,
    trigram_similarity,
)


class TestTokenize:
    @pytest.mark.parametrize(
        "label, expected",
        [
            ("BuyerPartID", ("buyer", "part", "id")),
            ("CONTACT_NAME", ("contact", "name")),
            ("unitPrice", ("unit", "price")),
            ("POLine", ("po", "line")),
            ("Unit_Price", ("unit", "price")),
            ("order", ("order",)),
            ("EMail", ("e", "mail")),
        ],
    )
    def test_splitting(self, label, expected):
        assert tokenize(label) == expected

    def test_normalize_applies_synonyms(self):
        assert normalize_tokens("ShipToParty") == ("deliver", "to", "party")
        assert normalize_tokens("BillTo") == ("invoice", "to")
        assert normalize_tokens("POLine") == ("order", "line")

    def test_normalize_keeps_unknown_tokens(self):
        assert normalize_tokens("TaxRate") == ("tax", "rate")


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("order", "order") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_substitution(self):
        assert levenshtein("cat", "car") == 1

    def test_insertion_deletion(self):
        assert levenshtein("order", "orders") == 1
        assert levenshtein("orders", "order") == 1

    def test_symmetry(self):
        assert levenshtein("street", "straat") == levenshtein("straat", "street")

    def test_triangle_like_bound(self):
        assert levenshtein("abc", "xyz") <= 3


class TestNormalizedSimilarities:
    def test_edit_similarity_bounds(self):
        assert edit_similarity("order", "order") == 1.0
        assert edit_similarity("", "") == 1.0
        assert 0.0 <= edit_similarity("abc", "xyz") <= 1.0

    def test_trigram_identical(self):
        assert trigram_similarity("quantity", "quantity") == 1.0

    def test_trigram_disjoint(self):
        assert trigram_similarity("abc", "xyz") == 0.0

    def test_trigram_empty(self):
        assert trigram_similarity("", "") == 1.0
        assert trigram_similarity("abc", "") == 0.0

    def test_token_set_identical(self):
        assert token_set_similarity(("unit", "price"), ("unit", "price")) == 1.0

    def test_token_set_empty(self):
        assert token_set_similarity((), ()) == 1.0
        assert token_set_similarity(("a",), ()) == 0.0

    def test_token_set_partial_overlap_ranked(self):
        close = token_set_similarity(("contact", "name"), ("contact", "name", "type"))
        far = token_set_similarity(("contact", "name"), ("tax", "rate"))
        assert close > far

    def test_token_set_symmetric_enough(self):
        a = token_set_similarity(("order", "line"), ("line", "item", "detail"))
        b = token_set_similarity(("line", "item", "detail"), ("order", "line"))
        assert a == pytest.approx(b)


class TestNameSimilarity:
    def test_identical_is_one(self):
        assert name_similarity("ContactName", "ContactName") == 1.0

    def test_cross_casing_high(self):
        assert name_similarity("CONTACT_NAME", "ContactName") > 0.9

    def test_synonyms_raise_similarity(self):
        assert name_similarity("ShipToParty", "DeliverTo") > name_similarity(
            "SellerParty", "DeliverTo"
        )

    def test_unrelated_low(self):
        assert name_similarity("TaxRate", "ContactName") < 0.4

    def test_bounded(self):
        for a, b in [("Order", "ORDER_ITEM"), ("UnitPrice", "Unit"), ("City", "Quantity")]:
            assert 0.0 <= name_similarity(a, b) <= 1.0

    def test_symmetric(self):
        assert name_similarity("UnitPrice", "UNIT_PRICE") == pytest.approx(
            name_similarity("UNIT_PRICE", "UnitPrice")
        )


class TestPathSimilarity:
    def test_identical(self):
        assert path_similarity("Order.Buyer.Address", "Order.Buyer.Address") == 1.0

    def test_context_discriminates_parties(self):
        deliver = path_similarity("Order.ShipToParty.Address.City", "Order.DeliverTo.Address.City")
        invoice = path_similarity("Order.BillToParty.Address.City", "Order.DeliverTo.Address.City")
        assert deliver > invoice

    def test_bounded(self):
        assert 0.0 <= path_similarity("Order.TaxSummary", "ORDER.CUSTOMS_INFO") <= 1.0
