"""Unit tests for the sharded corpus engine (partitioning + scatter-gather)."""

from __future__ import annotations

import pytest

from repro.corpus import (
    CorpusAnswer,
    ShardedCorpus,
    partition_document,
    subtree_size,
)
from repro.engine import Dataspace
from repro.exceptions import CorpusError, QueryError
from repro.workloads import open_corpus


def answer_set(result):
    return {(answer.mapping_id, answer.probability, answer.matches) for answer in result}


@pytest.fixture()
def figure_dataspace(figure_mappings, figure_document):
    return Dataspace.from_mapping_set(
        figure_mappings, document=figure_document, name="figure"
    )


QUERIES = (
    "//INVOICE_PARTY//CONTACT_NAME",
    "//SUPPLIER_PARTY//CONTACT_NAME",
    "//CONTACT_NAME",
    "ORDER",
    "ORDER[./INVOICE_PARTY/CONTACT_NAME]/SUPPLIER_PARTY",  # branchy at the root
)


class TestPartitionDocument:
    def test_every_node_in_exactly_one_subtree_or_spine(self, figure_document):
        partition = partition_document(figure_document, 3)
        spine = partition.spine_node_ids
        owned: list[int] = []
        for shard in partition.shards:
            for element_id in shard.present_elements:
                for node in shard.nodes_of_element(element_id):
                    if node.node_id not in spine:
                        owned.append(node.node_id)
        assert sorted(owned + sorted(spine)) == sorted(
            node.node_id for node in figure_document
        )

    def test_spine_replicated_into_every_shard(self, figure_document):
        partition = partition_document(figure_document, 4)
        root = figure_document.root
        for shard in partition.shards:
            assert root in shard.nodes_of_element(root.element_id)

    def test_shard_nodes_are_shared_objects(self, figure_document):
        partition = partition_document(figure_document, 2)
        for shard in partition.shards:
            for element_id in shard.present_elements:
                for node in shard.nodes_of_element(element_id):
                    assert figure_document.get(node.node_id) is node

    def test_partition_is_deterministic(self, figure_document):
        first = partition_document(figure_document, 3)
        second = partition_document(figure_document, 3)
        assert first.describe() == second.describe()
        for shard_a, shard_b in zip(first.shards, second.shards):
            assert shard_a.present_elements == shard_b.present_elements

    def test_more_shards_than_subtrees(self, figure_document):
        partition = partition_document(figure_document, 16)
        assert partition.num_shards == 16
        # Trailing shards are spine-only but still valid views.
        assert all(len(shard) >= len(partition.spine_node_ids) for shard in partition.shards)

    def test_subtree_size_matches_region_encoding(self, figure_document):
        assert subtree_size(figure_document.root) == len(figure_document)

    def test_invalid_inputs(self, figure_document, source_schema):
        from repro.document.document import XMLDocument

        with pytest.raises(CorpusError):
            partition_document(figure_document, 0)
        unfinalized = XMLDocument(source_schema, "raw.xml")
        with pytest.raises(CorpusError):
            partition_document(unfinalized, 2)

    def test_describe_reports_balance(self, figure_document):
        info = partition_document(figure_document, 2).describe()
        assert info["num_shards"] == 2
        assert sum(info["shard_subtrees"]) >= 1
        assert info["largest_shard"] <= info["num_nodes"]


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_execute_identical_to_unsharded(self, figure_dataspace, num_shards):
        corpus = figure_dataspace.shard(num_shards)
        for query in QUERIES:
            sharded = corpus.execute(query, use_cache=False)
            unsharded = figure_dataspace.execute(query, use_cache=False)
            assert answer_set(sharded) == answer_set(unsharded), query

    @pytest.mark.parametrize("num_shards", [1, 3])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_topk_identical_to_unsharded(self, figure_dataspace, num_shards, k):
        corpus = figure_dataspace.shard(num_shards)
        for query in QUERIES:
            sharded = corpus.execute(query, k=k, use_cache=False)
            unsharded = figure_dataspace.execute(query, k=k, use_cache=False)
            assert answer_set(sharded) == answer_set(unsharded), query

    def test_dataset_session_corpus(self):
        session = Dataspace.from_dataset("D1", h=10)
        corpus = session.shard(3)
        from repro.service import workload_queries

        for query in workload_queries("D1", limit=4):
            assert answer_set(corpus.execute(query, use_cache=False)) == answer_set(
                session.execute(query, use_cache=False)
            )

    def test_invalid_k_rejected(self, figure_dataspace):
        corpus = figure_dataspace.shard(2)
        with pytest.raises(QueryError):
            corpus.execute("ORDER", k=0)


class TestCorpusCaching:
    def test_merged_result_cached_and_scoped(self, figure_dataspace):
        corpus = figure_dataspace.shard(2)
        query = QUERIES[0]
        unsharded = figure_dataspace.execute(query)  # session-scoped entry
        first = corpus.gather(query)
        second = corpus.gather(query)
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert second.result is first.result
        # The sharded entry must not have displaced or served the session entry.
        assert figure_dataspace.execute(query) is unsharded
        assert answer_set(first.result) == answer_set(unsharded)

    def test_cache_invalidated_by_generation_bump(self):
        session = Dataspace.from_dataset("D1", h=8)
        corpus = session.shard(2)
        query = "//ContactName"
        corpus.gather(query)
        assert corpus.gather(query).cache == "hit"
        session.invalidate()
        assert corpus.gather(query).cache == "miss"

    def test_use_cache_false_bypasses(self, figure_dataspace):
        corpus = figure_dataspace.shard(2)
        assert corpus.gather(QUERIES[0], use_cache=False).cache == "bypass"
        assert corpus.gather(QUERIES[0], use_cache=False).cache == "bypass"


class TestExplainReport:
    def test_fan_out_and_skips_accounted(self):
        session = Dataspace.from_dataset("D7", h=10)
        corpus = session.shard(4)
        execution = corpus.explain("Q2", use_cache=False)
        assert execution.num_shards == 4
        assert execution.fan_out + execution.skipped_shards >= 4
        assert execution.fan_out >= 1
        statuses = {report.status for report in execution.shard_reports}
        assert "evaluated" in statuses or "spine" in statuses
        payload = execution.to_dict()
        assert payload["query"] == "Order/DeliverTo/Contact/EMail"
        assert len(payload["shards"]) >= 4
        assert "skipped" in execution.format()

    def test_branchy_root_query_routes_spine_pass(self):
        session = Dataspace.from_dataset("D7", h=10)
        corpus = session.shard(4)
        execution = corpus.explain("Q7", use_cache=False)
        assert execution.spine_rewrites >= 1
        assert any(report.status == "spine" for report in execution.shard_reports)

    def test_merge_statistics_count_duplicates(self, figure_dataspace):
        corpus = figure_dataspace.shard(3)
        # "ORDER" matches only the (replicated) spine root, so every shard
        # reports the same match and the merge deduplicates the copies.
        execution = corpus.explain("ORDER", use_cache=False)
        assert execution.duplicate_matches >= 1
        assert execution.merged_answers == len(execution.result)


def _session(matching_fixture, mappings, document, name):
    return Dataspace.from_mapping_set(mappings, document=document, name=name)


class TestMultiDatasetCorpus:
    def build_corpus(self, figure_matching, figure_elements, figure_document):
        from repro.mapping.mapping import Mapping
        from repro.mapping.mapping_set import MappingSet

        e = figure_elements

        def mapping(mapping_id, pairs, score):
            keys = frozenset((e[s], e[t]) for s, t in pairs)
            return Mapping(mapping_id, keys, score=score)

        shared = [("Order", "ORDER"), ("BP", "T_IP")]
        # Session A: skewed probabilities (0.6 / 0.4) — a high upper bound.
        a_set = MappingSet(
            figure_matching,
            [
                mapping(0, shared + [("BCN", "ICN"), ("RCN", "SCN")], 6.0),
                mapping(1, shared + [("BCN", "ICN"), ("OCN", "SCN")], 4.0),
            ],
        )
        # Session B: four uniform mappings (0.25 each) — a low upper bound.
        b_set = MappingSet(
            figure_matching,
            [
                mapping(0, shared + [("BCN", "ICN"), ("RCN", "SCN")], 1.0),
                mapping(1, shared + [("BCN", "ICN"), ("OCN", "SCN")], 1.0),
                mapping(2, shared + [("RCN", "ICN"), ("BCN", "SCN")], 1.0),
                mapping(3, shared + [("OCN", "ICN"), ("BCN", "SCN")], 1.0),
            ],
        )
        session_a = _session(figure_matching, a_set, figure_document, "A")
        session_b = _session(figure_matching, b_set, figure_document, "B")
        return ShardedCorpus([session_a, session_b], shards_per_session=2)

    def test_global_topk_matches_brute_force(
        self, figure_matching, figure_elements, figure_document
    ):
        corpus = self.build_corpus(figure_matching, figure_elements, figure_document)
        query = "//CONTACT_NAME"
        k = 3
        answers = corpus.top_k(query, k, use_cache=False)
        assert len(answers) <= k
        brute: list[tuple[float, int, int, frozenset]] = []
        for index, session in enumerate(corpus.sessions):
            for answer in session.execute(query, use_cache=False):
                brute.append((answer.probability, index, answer.mapping_id, answer.matches))
        brute.sort(key=lambda item: (-item[0], item[1], item[2]))
        expected = [
            CorpusAnswer(
                dataset=corpus.sessions[index].name,
                mapping_id=mapping_id,
                probability=probability,
                matches=matches,
            )
            for probability, index, mapping_id, matches in brute[:k]
        ]
        assert list(answers) == expected

    def test_bound_skips_low_probability_session(
        self, figure_matching, figure_elements, figure_document
    ):
        corpus = self.build_corpus(figure_matching, figure_elements, figure_document)
        # A's probabilities are 0.6/0.4; B's are 0.25 each.  With k=2 the
        # threshold settles at 0.4 > 0.25, so B's shards are never touched.
        execution = corpus.gather("//CONTACT_NAME", k=2, use_cache=False)
        assert execution.skipped_bound == 2
        assert all(answer.dataset == "A" for answer in execution.answers)
        statuses = {
            report.status
            for report in execution.shard_reports
            if report.dataset == "B"
        }
        assert statuses == {"skipped-bound"}

    def test_execute_requires_single_session(
        self, figure_matching, figure_elements, figure_document
    ):
        corpus = self.build_corpus(figure_matching, figure_elements, figure_document)
        with pytest.raises(CorpusError):
            corpus.execute("//CONTACT_NAME")
        # gather still works and exposes per-dataset results.
        execution = corpus.gather("//CONTACT_NAME", use_cache=False)
        assert set(execution.results) == {"A", "B"}

    def test_partial_cache_serves_second_gather(
        self, figure_matching, figure_elements, figure_document
    ):
        corpus = self.build_corpus(figure_matching, figure_elements, figure_document)
        corpus.gather("//CONTACT_NAME")
        execution = corpus.gather("//CONTACT_NAME")
        assert execution.cache == "partial"
        assert any(report.status == "cached" for report in execution.shard_reports)


class TestCorpusConstruction:
    def test_requires_sessions(self):
        with pytest.raises(CorpusError):
            ShardedCorpus([])

    def test_requires_positive_shards(self, figure_dataspace):
        with pytest.raises(CorpusError):
            ShardedCorpus([figure_dataspace], shards_per_session=0)

    def test_requires_unique_names(self, figure_mappings, figure_document):
        first = Dataspace.from_mapping_set(figure_mappings, document=figure_document, name="X")
        second = Dataspace.from_mapping_set(figure_mappings, document=figure_document, name="X")
        with pytest.raises(CorpusError):
            ShardedCorpus([first, second])

    def test_describe_and_repr(self, figure_dataspace):
        corpus = figure_dataspace.shard(2)
        info = corpus.describe()
        assert info["num_shards"] == 2
        assert info["homogeneous"] is True
        assert len(info["partitions"]) == 1
        assert "ShardedCorpus" in repr(corpus)

    def test_context_manager_closes_pool(self, figure_dataspace):
        with figure_dataspace.shard(2) as corpus:
            corpus.execute("ORDER", use_cache=False)
        corpus.close()  # idempotent

    def test_open_corpus_single_dataset(self):
        corpus = open_corpus("D1", shards=3, h=8)
        assert corpus.is_homogeneous
        assert corpus.num_shards == 3
        session = corpus.sessions[0]
        query = "//ContactName"
        assert answer_set(corpus.execute(query, use_cache=False)) == answer_set(
            session.execute(query, use_cache=False)
        )

    def test_open_corpus_multi_dataset(self):
        corpus = open_corpus(["D1", "D2"], shards=2, h=8)
        assert not corpus.is_homogeneous
        assert corpus.num_shards == 4
        assert [session.name for session in corpus.sessions] == ["D1", "D2"]

    def test_invalidate_passthrough(self, figure_dataspace):
        corpus = figure_dataspace.shard(2)
        generation = figure_dataspace.generation
        corpus.invalidate()
        assert figure_dataspace.generation == generation + 1


class TestShardDocumentView:
    def test_covers_elements(self, figure_document):
        partition = partition_document(figure_document, 2)
        shard = partition.shards[0]
        present = sorted(shard.present_elements)
        assert shard.covers_elements(present)
        absent = max(e.element_id for e in figure_document.schema.iter_preorder()) + 1
        assert not shard.covers_elements([present[0], absent])
        assert "ShardDocument" in repr(shard)

    def test_execute_batch_inline(self, figure_dataspace):
        corpus = figure_dataspace.shard(2)
        queries = [QUERIES[0], QUERIES[1], QUERIES[0]]
        batched = corpus.execute_batch(queries, use_cache=False)
        assert len(batched) == 3
        for query, result in zip(queries, batched):
            assert answer_set(result) == answer_set(
                figure_dataspace.execute(query, use_cache=False)
            )


class TestStateMemoScaling:
    def test_many_session_corpus_keeps_every_state(
        self, figure_mappings, figure_document
    ):
        sessions = [
            Dataspace.from_mapping_set(
                figure_mappings, document=figure_document, name=f"S{i}"
            )
            for i in range(10)
        ]
        corpus = ShardedCorpus(sessions, shards_per_session=1)
        corpus.gather("//CONTACT_NAME", use_cache=False)
        first = dict(corpus._states)
        assert len(first) == 10  # one state per session survives the bound
        corpus.gather("//CONTACT_NAME", use_cache=False)
        # The second gather reuses every memoized state instead of
        # re-partitioning (state objects are identical, not rebuilt).
        assert dict(corpus._states) == first
