"""Tests for the canonical result codecs (``repro.api.serialize``)."""

from __future__ import annotations

import json
import math

import pytest

from repro.api.serialize import (
    QueryAnswer,
    QueryResult,
    answer_to_json,
    canonical_json,
    delta_report_from_json,
    delta_report_to_json,
    execution_from_json,
    execution_to_json,
    explain_from_json,
    explain_to_json,
    result_from_json,
    result_to_json,
    value_distribution_to_json,
)
from repro.engine import Dataspace, MappingDelta


@pytest.fixture(scope="module")
def dataspace():
    return Dataspace.from_dataset("D1", h=20)


@pytest.fixture(scope="module")
def result(dataspace):
    return dataspace.execute("Q1")


class TestCanonicalJson:
    def test_compact_sorted(self):
        data = canonical_json({"b": 1, "a": [1, 2]})
        assert data == b'{"a":[1,2],"b":1}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": math.nan})

    def test_deterministic(self):
        payload = {"z": 1, "a": {"y": 2, "b": 3}}
        assert canonical_json(payload) == canonical_json(
            json.loads(canonical_json(payload))
        )


class TestResultCodec:
    def test_shape(self, result):
        payload = result_to_json(result)
        assert payload["num_answers"] == len(payload["answers"])
        for answer in payload["answers"]:
            assert set(answer) == {"mapping_id", "probability", "matches"}
            # float.hex() round-trips exactly
            assert math.isfinite(float.fromhex(answer["probability"]))

    def test_answers_sorted_by_mapping_id(self, result):
        payload = result_to_json(result)
        ids = [a["mapping_id"] for a in payload["answers"]]
        assert ids == sorted(ids)

    def test_round_trip_preserves_bytes(self, result):
        payload = result_to_json(result)
        view = result_from_json(payload, query="Q1")
        assert view.query == "Q1"
        assert result_to_json(view) == payload
        assert canonical_json(result_to_json(view)) == canonical_json(payload)

    def test_view_matches_engine_result(self, result):
        view = result_from_json(result_to_json(result))
        engine = sorted(result, key=lambda a: a.mapping_id)
        assert len(view) == len(engine)
        for got, want in zip(view, engine):
            assert got.mapping_id == want.mapping_id
            assert got.probability == pytest.approx(float(want.probability))

    def test_value_distribution_serialises(self, result):
        payload = value_distribution_to_json(result)
        assert json.loads(canonical_json(payload)) == payload


class TestQueryAnswerView:
    def test_answer_round_trip(self):
        answer = QueryAnswer(
            mapping_id=3,
            probability_hex=(0.25).hex(),
            matches=((((0, 1), (2, 3)),)),
        )
        assert QueryAnswer.from_json(answer.to_json()) == answer
        assert answer.probability == 0.25

    def test_result_view_iterates(self):
        result = QueryResult(
            query="Q1",
            answers=(
                QueryAnswer(mapping_id=0, probability_hex=(0.5).hex(), matches=()),
            ),
        )
        assert [a.mapping_id for a in result] == [0]
        assert len(result) == 1


class TestReportCodecs:
    def test_explain_round_trip(self, dataspace):
        report = dataspace.explain("Q1", k=5)
        payload = explain_to_json(report)
        assert canonical_json(explain_to_json(explain_from_json(payload))) == (
            canonical_json(payload)
        )

    def test_delta_report_round_trip(self, dataspace):
        mappings = dataspace.mapping_set.mappings
        delta = MappingDelta.build(
            reweight={
                mappings[0].mapping_id: mappings[1].probability,
                mappings[1].mapping_id: mappings[0].probability,
            },
        )
        session = Dataspace.from_dataset("D1", h=20)
        report = session.apply_delta(delta)
        payload = delta_report_to_json(report)
        assert canonical_json(
            delta_report_to_json(delta_report_from_json(payload))
        ) == canonical_json(payload)

    def test_execution_round_trip(self, dataspace):
        corpus = dataspace.shard(2)
        execution = corpus.explain("Q1", k=5)
        payload = execution_to_json(execution)
        assert canonical_json(
            execution_to_json(execution_from_json(payload))
        ) == canonical_json(payload)

    def test_execution_answers_are_canonical(self, dataspace):
        corpus = dataspace.shard(2)
        execution = corpus.explain("Q1")
        payload = execution_to_json(execution)
        assert len(payload["answers"]) == execution.merged_answers
        for answer in payload["answers"]:
            assert {"dataset", "mapping_id", "probability", "matches"} <= set(answer)
            assert math.isfinite(float.fromhex(answer["probability"]))
        # The whole payload is canonical-JSON clean (no NaN, JSON-native types).
        assert json.loads(canonical_json(payload)) == payload
