"""Tests for the document model, generator, values and serialiser."""

from __future__ import annotations

import pytest

from repro.document.document import XMLDocument
from repro.document.generator import generate_document, generate_order_document
from repro.document.serializer import document_to_xml, parse_document_xml
from repro.document.values import value_for_label
from repro.exceptions import DocumentConformanceError, DocumentError
from repro._rng import make_rng
from repro.schema.corpus import load_corpus_schema
from repro.schema.parser import parse_schema

SCHEMA_TEXT = """
Order
  Buyer
    Name
  Line *
    Quantity
"""


@pytest.fixture()
def schema():
    return parse_schema(SCHEMA_TEXT, name="doc-test")


@pytest.fixture()
def document(schema):
    doc = XMLDocument(schema, name="test.xml")
    order = doc.add_root(schema.element_by_path("Order").element_id)
    buyer = doc.add_child(order, schema.element_by_path("Order.Buyer").element_id)
    doc.add_child(buyer, schema.element_by_path("Order.Buyer.Name").element_id, value="Acme")
    line1 = doc.add_child(order, schema.element_by_path("Order.Line").element_id)
    doc.add_child(line1, schema.element_by_path("Order.Line.Quantity").element_id, value="3")
    line2 = doc.add_child(order, schema.element_by_path("Order.Line").element_id)
    doc.add_child(line2, schema.element_by_path("Order.Line.Quantity").element_id, value="5")
    return doc.finalize()


class TestDocumentConstruction:
    def test_node_count(self, document):
        assert len(document) == 7

    def test_root_must_be_schema_root(self, schema):
        doc = XMLDocument(schema)
        with pytest.raises(DocumentConformanceError):
            doc.add_root(schema.element_by_path("Order.Buyer").element_id)

    def test_only_one_root(self, schema):
        doc = XMLDocument(schema)
        doc.add_root(schema.element_by_path("Order").element_id)
        with pytest.raises(DocumentError):
            doc.add_root(schema.element_by_path("Order").element_id)

    def test_child_must_conform(self, schema):
        doc = XMLDocument(schema)
        order = doc.add_root(schema.element_by_path("Order").element_id)
        with pytest.raises(DocumentConformanceError):
            doc.add_child(order, schema.element_by_path("Order.Buyer.Name").element_id)

    def test_repeated_elements_allowed(self, document, schema):
        line_id = schema.element_by_path("Order.Line").element_id
        assert len(document.nodes_of_element(line_id)) == 2

    def test_finalized_document_immutable(self, document, schema):
        with pytest.raises(DocumentError):
            document.add_child(document.root, schema.element_by_path("Order.Buyer").element_id)

    def test_finalize_requires_root(self, schema):
        with pytest.raises(DocumentError):
            XMLDocument(schema).finalize()

    def test_validate(self, document):
        document.validate()


class TestRegionEncoding:
    def test_root_contains_everything(self, document):
        root = document.root
        for node in document:
            if node is not root:
                assert root.is_ancestor_of(node)

    def test_siblings_do_not_contain_each_other(self, document, schema):
        lines = document.nodes_of_element(schema.element_by_path("Order.Line").element_id)
        assert not lines[0].is_ancestor_of(lines[1])
        assert not lines[1].is_ancestor_of(lines[0])

    def test_parent_child(self, document, schema):
        buyer = document.nodes_of_element(schema.element_by_path("Order.Buyer").element_id)[0]
        name = document.nodes_of_element(schema.element_by_path("Order.Buyer.Name").element_id)[0]
        assert buyer.is_parent_of(name)
        assert buyer.is_ancestor_of(name)

    def test_levels(self, document):
        assert document.root.level == 0
        assert document.depth() == 2

    def test_path_labels(self, document, schema):
        name = document.nodes_of_element(schema.element_by_path("Order.Buyer.Name").element_id)[0]
        assert name.path_labels() == ["Order", "Buyer", "Name"]


class TestLookups:
    def test_get(self, document):
        assert document.get(0) is document.root
        with pytest.raises(DocumentError):
            document.get(999)

    def test_nodes_with_label(self, document):
        assert len(document.nodes_with_label("Quantity")) == 2
        assert document.nodes_with_label("Missing") == []

    def test_iter_preorder_order(self, document):
        starts = [node.start for node in document.iter_preorder()]
        assert starts == sorted(starts)


class TestValues:
    def test_value_kinds(self):
        rng = make_rng(1, "values")
        assert "@" in value_for_label("EMail", rng)
        assert value_for_label("ContactName", rng)
        assert value_for_label("City", rng)
        assert value_for_label("UnitPrice", rng).replace(".", "").isdigit()
        assert value_for_label("Quantity", rng).isdigit()
        assert value_for_label("OrderDate", rng).startswith("2009-")

    def test_deterministic_per_rng(self):
        a = value_for_label("City", make_rng(5, "v"))
        b = value_for_label("City", make_rng(5, "v"))
        assert a == b


class TestGenerator:
    def test_single_pass_covers_every_element(self):
        schema = load_corpus_schema("cidx")
        doc = generate_document(schema)
        assert len(doc) == len(schema)
        doc.validate()

    def test_target_nodes_reached(self):
        schema = load_corpus_schema("apertum")
        doc = generate_document(schema, target_nodes=600)
        assert len(doc) >= 600
        doc.validate()

    def test_target_without_repeatable_rejected(self):
        schema = parse_schema("Order\n  Buyer\n")
        with pytest.raises(DocumentError):
            generate_document(schema, target_nodes=100)

    def test_deterministic(self):
        schema = load_corpus_schema("cidx")
        a = generate_document(schema, target_nodes=100, seed=1)
        b = generate_document(schema, target_nodes=100, seed=1)
        assert len(a) == len(b)
        assert [n.label for n in a.iter_preorder()] == [n.label for n in b.iter_preorder()]

    def test_order_document_size(self):
        doc = generate_order_document()
        assert abs(len(doc) - 3473) < 120  # within one repeated subtree of the target
        assert doc.schema.name == "xcbl"

    def test_leaves_have_values(self):
        schema = load_corpus_schema("cidx")
        doc = generate_document(schema)
        assert all(node.value is not None for node in doc if node.is_leaf)


class TestSerializer:
    def test_round_trip(self, document, schema):
        xml = document_to_xml(document)
        parsed = parse_document_xml(xml, schema)
        assert len(parsed) == len(document)
        assert [n.label for n in parsed.iter_preorder()] == [
            n.label for n in document.iter_preorder()
        ]
        assert [n.value for n in parsed.iter_preorder()] == [
            n.value for n in document.iter_preorder()
        ]

    def test_xml_escaping(self, schema):
        doc = XMLDocument(schema)
        order = doc.add_root(schema.element_by_path("Order").element_id)
        buyer = doc.add_child(order, schema.element_by_path("Order.Buyer").element_id)
        doc.add_child(
            buyer, schema.element_by_path("Order.Buyer.Name").element_id, value="A & B <Ltd>"
        )
        doc.finalize()
        parsed = parse_document_xml(document_to_xml(doc), schema)
        names = parsed.nodes_with_label("Name")
        assert names[0].value == "A & B <Ltd>"

    def test_nonconforming_rejected(self, schema):
        with pytest.raises(DocumentError):
            parse_document_xml("<Order><Intruder/></Order>", schema)

    def test_wrong_root_rejected(self, schema):
        with pytest.raises(DocumentError):
            parse_document_xml("<Invoice/>", schema)

    def test_mismatched_close_rejected(self, schema):
        with pytest.raises(DocumentError):
            parse_document_xml("<Order><Buyer></Order></Buyer>", schema)
