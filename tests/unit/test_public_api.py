"""Tests for the top-level public API surface."""

from __future__ import annotations

import re
import warnings
from pathlib import Path

import pytest

import repro

API_DOC = Path(__file__).resolve().parents[2] / "docs" / "api.md"

#: Backticked identifiers in docs/api.md that are prose context, not exports.
_DOC_CONTEXT_NAMES = {"repro", "DeprecationWarning"}


def documented_names() -> set[str]:
    """Single backticked identifiers in docs/api.md (dotted paths excluded)."""
    text = API_DOC.read_text()
    names = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", text))
    return names - _DOC_CONTEXT_NAMES


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.10.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_no_private_names_leak(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert not name.startswith("_"), f"private name {name!r} in __all__"

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_all_matches_api_docs(self):
        """docs/api.md and ``repro.__all__`` are the same contract."""
        documented = documented_names()
        exported = set(repro.__all__)
        assert documented - exported == set(), (
            "documented but not exported — remove from docs/api.md or export"
        )
        assert exported - documented == set(), (
            "exported but undocumented — add to docs/api.md"
        )

    def test_key_entry_points_exposed(self):
        for name in (
            "Schema",
            "SchemaMatcher",
            "generate_top_h_mappings",
            "build_block_tree",
            "parse_twig",
            "evaluate_ptq_basic",
            "evaluate_ptq_blocktree",
            "evaluate_topk_ptq",
            "load_dataset",
            "standard_queries",
            "Dataspace",
            "PreparedQuery",
            "QueryPlan",
            "ReproServer",
            "ReproClient",
            "connect",
            "PROTOCOL_VERSION",
        ):
            assert name in repro.__all__

    def test_docstring_mentions_paper_concepts(self):
        assert "block tree" in (repro.__doc__ or "")
        assert "probabilistic twig" in (repro.__doc__ or "").lower()

    def test_module_docstrings_exist(self):
        import importlib
        import pkgutil

        package = repro
        missing = []
        for module_info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert (obj.__doc__ or "").strip(), f"{name} lacks a docstring"

    def test_public_functions_documented(self):
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj):
                assert (obj.__doc__ or "").strip(), f"{name} lacks a docstring"


class TestDeprecatedSeedFunctions:
    """The seed free functions warn on call through the top-level namespace."""

    DEPRECATED = ("evaluate_ptq_basic", "evaluate_ptq_blocktree", "evaluate_topk_ptq")

    def test_access_does_not_warn(self):
        """Merely importing/touching the name stays silent (re-exports,
        ``from repro import *``, and hasattr probes must not spam)."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in self.DEPRECATED:
                getattr(repro, name)

    @pytest.mark.parametrize("name", DEPRECATED)
    def test_call_warns_and_delegates(self, name):
        import repro.query as query_module

        func = getattr(repro, name)
        with pytest.warns(DeprecationWarning, match=name):
            with pytest.raises(TypeError):
                func()  # wrong arity — warning fires before delegation
        # The wrapper preserves identity metadata of the underlying function.
        assert func.__name__ == name
        assert func.__doc__ == getattr(query_module, name).__doc__

    def test_low_level_path_stays_silent(self):
        """``repro.query.*`` remains the un-deprecated low-level entry point."""
        import repro.query as query_module

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in self.DEPRECATED:
                assert callable(getattr(query_module, name))

    def test_deprecated_call_still_works(self):
        ds = repro.Dataspace.from_dataset("D1", h=10)
        twig = repro.parse_twig("Q1", aliases=repro.QUERY_STRINGS)
        with pytest.warns(DeprecationWarning):
            result = repro.evaluate_ptq_blocktree(
                twig, ds.mapping_set, ds.document, ds.block_tree
            )
        expected = ds.execute("Q1", plan="blocktree", use_cache=False)
        assert {a.mapping_id for a in result} == {a.mapping_id for a in expected}

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.not_a_real_name  # noqa: B018
