"""Tests for the top-level public API surface."""

from __future__ import annotations

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_key_entry_points_exposed(self):
        for name in (
            "Schema",
            "SchemaMatcher",
            "generate_top_h_mappings",
            "build_block_tree",
            "parse_twig",
            "evaluate_ptq_basic",
            "evaluate_ptq_blocktree",
            "evaluate_topk_ptq",
            "load_dataset",
            "standard_queries",
            "Dataspace",
            "PreparedQuery",
            "QueryPlan",
        ):
            assert name in repro.__all__

    def test_docstring_mentions_paper_concepts(self):
        assert "block tree" in (repro.__doc__ or "")
        assert "probabilistic twig" in (repro.__doc__ or "").lower()

    def test_module_docstrings_exist(self):
        import importlib
        import pkgutil

        package = repro
        missing = []
        for module_info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert (obj.__doc__ or "").strip(), f"{name} lacks a docstring"

    def test_public_functions_documented(self):
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj):
                assert (obj.__doc__ or "").strip(), f"{name} lacks a docstring"
