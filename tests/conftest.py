"""Shared fixtures for the test suite.

Two families of fixtures exist:

* **toy fixtures** — small hand-built schemas, matchings, mapping sets and a
  document modelled on the paper's running example (Figures 1-3).  They are
  cheap and used by most unit tests.
* **corpus fixtures** — the D7 dataset (XCBL → Apertum), its mapping set,
  block tree and source document, shared at session scope because they take
  about a second to build and are reused by the integration tests.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

# Hypothesis profiles: "dev" (default) keeps random exploration; "ci" is
# derandomized so CI failures are reproducible and the suite is
# deterministic run-to-run.  Select with HYPOTHESIS_PROFILE=ci.
settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.document.document import XMLDocument
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.schema.parser import parse_schema
from repro.workloads.datasets import build_mapping_set, load_dataset, load_source_document


def pytest_addoption(parser):
    """Add ``--update-golden``: regenerate tests/golden snapshots in place."""
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden PTQ answer snapshots instead of asserting them",
    )


# --------------------------------------------------------------------------- #
# Toy schemas modelled on Figure 1 of the paper
# --------------------------------------------------------------------------- #
SOURCE_SCHEMA_TEXT = """
Order
  BillToParty
    OrderContact
      ContactName
    ReceivingContact
      ContactName
    OtherContact
      ContactName
  SellerParty
"""

TARGET_SCHEMA_TEXT = """
ORDER
  SUPPLIER_PARTY
    CONTACT_NAME
  INVOICE_PARTY
    CONTACT_NAME
"""


@pytest.fixture()
def source_schema():
    """The paper's source schema (Figure 1a), as a small element tree."""
    return parse_schema(SOURCE_SCHEMA_TEXT, name="figure1a")


@pytest.fixture()
def target_schema():
    """The paper's target schema (Figure 1b)."""
    return parse_schema(TARGET_SCHEMA_TEXT, name="figure1b")


def _element(schema, path):
    return schema.element_by_path(path).element_id


@pytest.fixture()
def figure_elements(source_schema, target_schema):
    """Short names for the Figure 1 elements (BCN, RCN, OCN, ICN, SCN, ...)."""
    return {
        # source
        "Order": _element(source_schema, "Order"),
        "BP": _element(source_schema, "Order.BillToParty"),
        "SP": _element(source_schema, "Order.SellerParty"),
        "BOC": _element(source_schema, "Order.BillToParty.OrderContact"),
        "ROC": _element(source_schema, "Order.BillToParty.ReceivingContact"),
        "OOC": _element(source_schema, "Order.BillToParty.OtherContact"),
        "BCN": _element(source_schema, "Order.BillToParty.OrderContact.ContactName"),
        "RCN": _element(source_schema, "Order.BillToParty.ReceivingContact.ContactName"),
        "OCN": _element(source_schema, "Order.BillToParty.OtherContact.ContactName"),
        # target
        "ORDER": _element(target_schema, "ORDER"),
        "T_SP": _element(target_schema, "ORDER.SUPPLIER_PARTY"),
        "T_IP": _element(target_schema, "ORDER.INVOICE_PARTY"),
        "SCN": _element(target_schema, "ORDER.SUPPLIER_PARTY.CONTACT_NAME"),
        "ICN": _element(target_schema, "ORDER.INVOICE_PARTY.CONTACT_NAME"),
    }


@pytest.fixture()
def figure_matching(source_schema, target_schema, figure_elements):
    """A schema matching containing every correspondence used by Figure 3."""
    e = figure_elements
    matching = SchemaMatching(source_schema, target_schema, name="figure1")
    pairs = [
        (e["Order"], e["ORDER"], 0.95),
        (e["BP"], e["T_IP"], 0.84),
        (e["SP"], e["T_IP"], 0.60),
        (e["BP"], e["T_SP"], 0.55),
        (e["BCN"], e["ICN"], 0.84),
        (e["RCN"], e["ICN"], 0.83),
        (e["OCN"], e["ICN"], 0.75),
        (e["BCN"], e["SCN"], 0.62),
        (e["RCN"], e["SCN"], 0.61),
        (e["OCN"], e["SCN"], 0.60),
    ]
    for source_id, target_id, score in pairs:
        matching.add_pair(source_id, target_id, score)
    return matching


def _figure_mapping(mapping_id, elements, pairs, score):
    keys = frozenset((elements[s], elements[t]) for s, t in pairs)
    return Mapping(mapping_id=mapping_id, correspondences=keys, score=score)


@pytest.fixture()
def figure_mappings(figure_matching, figure_elements):
    """The five possible mappings of Figure 3, as a normalised mapping set."""
    e = figure_elements
    mappings = [
        _figure_mapping(0, e, [("Order", "ORDER"), ("BP", "T_IP"), ("BCN", "ICN"), ("RCN", "SCN")], 3.0),
        _figure_mapping(1, e, [("Order", "ORDER"), ("BP", "T_IP"), ("BCN", "ICN"), ("OCN", "SCN")], 3.0),
        _figure_mapping(2, e, [("Order", "ORDER"), ("SP", "T_IP"), ("RCN", "ICN"), ("OCN", "SCN"), ("BP", "T_SP")], 2.0),
        _figure_mapping(3, e, [("Order", "ORDER"), ("BP", "T_IP"), ("RCN", "ICN"), ("BCN", "SCN")], 1.5),
        _figure_mapping(4, e, [("Order", "ORDER"), ("BP", "T_IP"), ("OCN", "ICN"), ("BCN", "SCN")], 1.5),
    ]
    return MappingSet(figure_matching, mappings, normalize=True)


@pytest.fixture()
def figure_document(source_schema, figure_elements):
    """The source document of Figure 2 (Cathy / Bob / Alice contact names)."""
    e = figure_elements
    document = XMLDocument(source_schema, name="figure2.xml")
    order = document.add_root(e["Order"])
    bp = document.add_child(order, e["BP"])
    boc = document.add_child(bp, e["BOC"])
    document.add_child(boc, e["BCN"], value="Cathy")
    roc = document.add_child(bp, e["ROC"])
    document.add_child(roc, e["RCN"], value="Bob")
    ooc = document.add_child(bp, e["OOC"])
    document.add_child(ooc, e["OCN"], value="Alice")
    document.add_child(order, e["SP"])
    return document.finalize()


@pytest.fixture()
def figure_block_tree(figure_mappings):
    """Block tree over the Figure 3 mappings with the paper's τ = 0.4."""
    return build_block_tree(figure_mappings, BlockTreeConfig(tau=0.4))


# --------------------------------------------------------------------------- #
# Corpus fixtures (session scope: ~1-2 s to build, reused by many tests)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def d7_dataset():
    """The D7 dataset (XCBL → Apertum, context option)."""
    return load_dataset("D7")


@pytest.fixture(scope="session")
def d7_mappings():
    """Top-100 possible mappings of D7 (the paper's default |M|)."""
    return build_mapping_set("D7", 100)


@pytest.fixture(scope="session")
def d7_block_tree(d7_mappings):
    """Block tree over the D7 mapping set with default parameters."""
    return build_block_tree(d7_mappings)


@pytest.fixture(scope="session")
def d7_document():
    """The Order.xml-like source document for D7 (~3473 nodes)."""
    return load_source_document("D7")


@pytest.fixture(scope="session")
def d1_dataset():
    """The small D1 dataset (Excel → Noris, fragment option)."""
    return load_dataset("D1")
