"""Golden regression fixtures: PTQ answers on D1–D10, snapshot-compared.

Each dataset has a JSON snapshot under ``tests/golden/data/`` holding the
canonical serialisation of the answers to a fixed, deterministic query set
(:func:`repro.service.workload_queries`).  The snapshots are *generated from
the seed free functions* (``evaluate_ptq_blocktree``) and *asserted against
the concurrent service path* (warm-cache ``QueryService.execute_many``), so
they prove byte-identical answers across the whole stack and pin them down
for future perf refactors.

Regenerate after an intentional answer change with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

Probabilities are serialised with ``float.hex()`` — exact, platform-stable
representations — so "byte-identical" means exactly that.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.serialize import result_to_json
from repro.engine import Dataspace
from repro.engine.kernels import available_backends
from repro.query.parser import parse_twig
from repro.query.ptq import evaluate_ptq_blocktree
from repro.service import QueryService, workload_queries
from repro.workloads.datasets import DATASET_IDS
from repro.workloads.queries import QUERY_ALIASES, QUERY_STRINGS, load_query

#: Kernel backends importable in this process.  The snapshots are asserted
#: per backend, so the numpy kernels are pinned byte-exactly to the same
#: answers as the pure-Python reference wherever numpy is installed.
BACKENDS = available_backends()

#: Mapping-set size for the golden fixtures (kept small so all ten datasets
#: stay cheap to build; the differential suites cover other sizes).
GOLDEN_H = 25
#: Queries per dataset.
GOLDEN_QUERIES = 5

DATA_DIR = Path(__file__).parent / "data"


def golden_path(dataset_id: str) -> Path:
    return DATA_DIR / f"{dataset_id}.json"


def twig_for(query: str):
    """Parse a workload query exactly as the seed pipeline would."""
    if query.upper() in QUERY_STRINGS:
        return load_query(query)
    return parse_twig(query, aliases=QUERY_ALIASES)


def canonical_result(result) -> dict:
    """Canonical, byte-stable serialisation of a PTQResult.

    Delegates to the library-wide codec (:mod:`repro.api.serialize`) — the
    same one the CLI's ``--json`` and the network server emit — so these
    snapshots pin every serving surface at once.  The existing snapshot
    files predate the shared codec and remain valid unchanged because the
    codec emits exactly this historical shape.
    """
    return result_to_json(result)


def serialize(dataset_id: str, results: dict[str, dict]) -> str:
    payload = {
        "dataset": dataset_id,
        "h": GOLDEN_H,
        "queries": results,
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


@pytest.fixture(scope="module")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dataset_id", DATASET_IDS)
def test_golden_answers(dataset_id, backend, update_golden):
    queries = workload_queries(dataset_id, limit=GOLDEN_QUERIES)
    session = Dataspace.from_dataset(dataset_id, h=GOLDEN_H, kernels=backend)
    assert session.kernels.name == backend
    # The service path below runs the engine's default plan — the compiled
    # bitset core — so these snapshots pin the compiled plan byte-exactly
    # against answers generated from the seed free functions.
    assert session.select_plan()[0].name == "compiled"

    if update_golden:
        if backend != BACKENDS[0]:
            pytest.skip("snapshots are regenerated once; backends share them")
        # Regenerate from the *seed free functions* — the reference the
        # service path is later held to.
        mapping_set = session.mapping_set
        document = session.document
        block_tree = session.block_tree
        reference = {
            query: canonical_result(
                evaluate_ptq_blocktree(twig_for(query), mapping_set, document, block_tree)
            )
            for query in queries
        }
        DATA_DIR.mkdir(exist_ok=True)
        golden_path(dataset_id).write_text(serialize(dataset_id, reference))
        pytest.skip(f"golden snapshot for {dataset_id} regenerated")

    path = golden_path(dataset_id)
    assert path.exists(), (
        f"missing golden snapshot {path}; run pytest tests/golden --update-golden"
    )
    golden = path.read_text()

    # Serve the same queries through the concurrent, cached service path —
    # twice, so the second pass answers from a warm result cache.
    with QueryService(session, max_workers=4) as service:
        cold = service.execute_many(queries)
        warm = service.execute_many(queries)
    cold_serialized = serialize(
        dataset_id, {q: canonical_result(r) for q, r in zip(queries, cold)}
    )
    warm_serialized = serialize(
        dataset_id, {q: canonical_result(r) for q, r in zip(queries, warm)}
    )
    assert warm_serialized == cold_serialized
    assert cold_serialized == golden, (
        f"{dataset_id}: service answers diverge from the golden snapshot; if the "
        "change is intentional, regenerate with --update-golden"
    )
    # The warm pass must actually have been served by the cache.
    assert session.result_cache.stats().hits >= len(queries)


#: Shard counts the scatter-gather executor is pinned against.
SHARD_COUNTS = (1, 2, 4, 7)


@pytest.mark.parametrize("dataset_id", DATASET_IDS)
def test_golden_answers_sharded(dataset_id, update_golden):
    """Scatter-gather answers are byte-identical to the golden snapshots.

    The same fixed query set is evaluated through a :class:`ShardedCorpus`
    at every shard count in :data:`SHARD_COUNTS` — both uncached and via the
    corpus-scoped result cache — and serialised answers must match the
    snapshot byte for byte, which pins sharded execution to the unsharded
    compiled plan (itself pinned to the seed free functions above).
    """
    if update_golden:
        pytest.skip("snapshots are regenerated by test_golden_answers")
    path = golden_path(dataset_id)
    assert path.exists(), (
        f"missing golden snapshot {path}; run pytest tests/golden --update-golden"
    )
    golden = path.read_text()
    queries = workload_queries(dataset_id, limit=GOLDEN_QUERIES)
    session = Dataspace.from_dataset(dataset_id, h=GOLDEN_H)
    for num_shards in SHARD_COUNTS:
        corpus = session.shard(num_shards)
        cold = {
            query: canonical_result(corpus.execute(query, use_cache=False))
            for query in queries
        }
        assert serialize(dataset_id, cold) == golden, (
            f"{dataset_id}: scatter-gather answers over {num_shards} shards diverge "
            "from the golden snapshot"
        )
        warm = {
            query: canonical_result(corpus.execute(query)) for query in queries
        }
        assert serialize(dataset_id, warm) == golden, (
            f"{dataset_id}: cached scatter-gather answers over {num_shards} shards "
            "diverge from the golden snapshot"
        )
