"""Concurrency stress tests: many readers, interleaved reconfiguration.

These tests hammer one :class:`~repro.engine.Dataspace` from several threads
while the main thread keeps calling ``configure(h=..., tau=...)`` and
``invalidate()``, and assert the engine's serving guarantees:

* **no torn reads** — every result is computed against one atomic snapshot
  (the snapshot's block tree is always the one built over the snapshot's
  mapping set);
* **no stale-generation cache hits** — results are keyed by generation, so
  per generation the answer set is unique and deterministic (``tau`` changes
  may swap the plan mid-generation, but Algorithm 3 ≡ Algorithm 4 makes that
  invisible in the answers);
* **deterministic results per generation** — every thread that observed a
  generation observed the same answers.

The sessions here are built over the small Figure 1 schemas so hundreds of
executions stay fast.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import Dataspace

QUERIES = (
    "//INVOICE_PARTY//CONTACT_NAME",
    "//SUPPLIER_PARTY//CONTACT_NAME",
    "ORDER",
)


def canonical(result):
    return frozenset(
        (answer.mapping_id, float(answer.probability).hex(), answer.matches)
        for answer in result
    )


@pytest.fixture()
def session(source_schema, target_schema):
    """A rebuildable (unpinned) session over the Figure 1 schemas."""
    return Dataspace(source_schema, target_schema, h=5, seed=1, tau=0.3)


class TestConcurrentReaders:
    def test_many_threads_one_generation(self, session):
        """Readers without writers: identical answers, resolve/filter run once."""
        errors: list[BaseException] = []
        observed: list = []
        barrier = threading.Barrier(8, timeout=10)

        def worker():
            try:
                barrier.wait()
                for _ in range(10):
                    for query in QUERIES:
                        observed.append((query, canonical(session.execute(query))))
            except BaseException as error:  # noqa: BLE001 - collected for the assertion
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        by_query: dict[str, set] = {}
        for query, answers in observed:
            by_query.setdefault(query, set()).add(answers)
        assert all(len(distinct) == 1 for distinct in by_query.values())
        for query in QUERIES:
            prepared = session.prepare(query)
            assert prepared.resolve_count == 1
            assert prepared.filter_count == 1

    def test_concurrent_first_build_is_consistent(self, source_schema, target_schema):
        """Racing threads on a cold session must agree on the built artifacts."""
        ds = Dataspace(source_schema, target_schema, h=5, seed=1)
        snapshots = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(6, timeout=10)

        def worker():
            try:
                barrier.wait()
                snapshots.append(ds.snapshot())
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len({id(snap.mapping_set) for snap in snapshots}) == 1
        assert len({id(snap.block_tree) for snap in snapshots}) == 1


class TestConfigureInterleaving:
    def test_no_torn_reads_no_stale_hits(self, session):
        """Hammer executes while h/tau reconfigurations interleave."""
        stop = threading.Event()
        errors: list[BaseException] = []
        records: list[tuple[int, str, frozenset]] = []
        lock = threading.Lock()

        def worker():
            try:
                while not stop.is_set():
                    for query in QUERIES:
                        snap = session.snapshot()
                        # Torn-read check: the snapshot's tree was built over
                        # exactly the snapshot's mapping set.
                        assert snap.block_tree.mapping_set is snap.mapping_set
                        result = session.prepare(query).execute(snapshot=snap)
                        with lock:
                            records.append((snap.generation, query, canonical(result)))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)
                stop.set()

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        # Interleave reconfigurations: tau flips rebuild the tree in place
        # (no generation bump), h flips and invalidate() bump the generation.
        # The short sleeps give the reader threads real work between writes.
        import time

        for round_index in range(30):
            if stop.is_set():
                break
            if round_index % 3 == 0:
                session.configure(tau=0.2 + 0.3 * (round_index % 2))
            elif round_index % 3 == 1:
                session.configure(h=3 + (round_index // 3) % 3)
            else:
                session.invalidate()
            time.sleep(0.002)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # The workers must have genuinely interleaved with the writers:
        # many records, spread over several generations.
        assert len(records) >= 50
        assert len({generation for generation, _, _ in records}) >= 3

        # Deterministic per generation: every thread that observed a
        # (generation, query) pair observed exactly one answer set — a stale
        # cache hit or a torn read would surface as a second distinct set.
        distinct: dict[tuple[int, str], set] = {}
        for generation, query, answers in records:
            distinct.setdefault((generation, query), set()).add(answers)
        conflicting = {key for key, values in distinct.items() if len(values) != 1}
        assert not conflicting

        # And the final cached state agrees with a fresh, cache-bypassing
        # evaluation of the current generation.
        for query in QUERIES:
            cached = session.execute(query)
            fresh = session.execute(query, use_cache=False)
            assert canonical(cached) == canonical(fresh)

    def test_batch_under_reconfiguration_is_single_generation(self, session):
        """query_batch pins one snapshot even while configure() races it."""
        stop = threading.Event()
        errors: list[BaseException] = []

        def reconfigure():
            try:
                index = 0
                while not stop.is_set():
                    session.configure(h=3 + index % 3)
                    index += 1
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        writer = threading.Thread(target=reconfigure)
        writer.start()
        try:
            for _ in range(20):
                results = session.query_batch(list(QUERIES) * 2, max_workers=4)
                # Duplicate queries inside one batch share one snapshot, so
                # their answers must be identical objects or at least equal.
                for left, right in zip(results[:3], results[3:]):
                    assert canonical(left) == canonical(right)
        finally:
            stop.set()
            writer.join(timeout=60)
        assert not errors


class TestShardedCorpusInterleaving:
    def test_corpus_no_torn_reads_deterministic_per_generation(self, session):
        """Hammer scatter-gather while configure()/invalidate() interleave.

        Every gather records the generation signature it evaluated against;
        per (generation, query) the merged answer set must be unique across
        all reader threads — a torn shard state (partition from one
        generation, compiled artifacts from another) or a mis-scoped cache
        hit would surface as a second distinct set.  Results must also stay
        byte-identical to a fresh unsharded evaluation at the end.
        """
        corpus = session.shard(3)
        stop = threading.Event()
        errors: list[BaseException] = []
        records: list[tuple[int, str, frozenset]] = []
        lock = threading.Lock()

        def worker():
            try:
                while not stop.is_set():
                    for query in QUERIES:
                        execution = corpus.gather(query)
                        generation = execution.generations[0][1]
                        with lock:
                            records.append(
                                (generation, query, canonical(execution.result))
                            )
            except BaseException as error:  # noqa: BLE001 - collected for the assertion
                errors.append(error)
                stop.set()

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        import time

        for round_index in range(30):
            if stop.is_set():
                break
            if round_index % 2 == 0:
                session.configure(h=3 + (round_index // 2) % 3)
            else:
                session.invalidate()
            time.sleep(0.002)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(records) >= 50
        assert len({generation for generation, _, _ in records}) >= 3

        distinct: dict[tuple[int, str], set] = {}
        for generation, query, answers in records:
            distinct.setdefault((generation, query), set()).add(answers)
        conflicting = {key for key, values in distinct.items() if len(values) != 1}
        assert not conflicting

        # Final state: sharded (cached and uncached) == unsharded fresh.
        for query in QUERIES:
            fresh = session.execute(query, use_cache=False)
            assert canonical(corpus.execute(query, use_cache=False)) == canonical(fresh)
            assert canonical(corpus.execute(query)) == canonical(fresh)
