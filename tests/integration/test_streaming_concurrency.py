"""Concurrency stress tests for the standing-query notification engine.

Threads register and cancel subscriptions while other threads commit delta
batches and ``configure()``/``invalidate()`` the session.  The delivery
contract under this interleaving:

* **no missed notifications** — after the stream quiesces, folding every
  delivered update onto a subscriber's ``initial`` baseline reproduces a
  fresh, cache-bypassing execution of the standing query byte-for-byte
  (generation bumps from ``configure(h=...)`` included: they classify as
  structural at the next committed batch);
* **no duplicates, no time travel** — per subscriber the update epochs are
  strictly increasing, and no update carries an epoch at or before the
  subscriber's ``initial`` baseline (an epoch the subscriber never saw);
* **per-epoch determinism** — any two subscribers to the same standing
  ``(query, k)`` that both observed an epoch observed the identical diff;
* **no swallowed failures** — the registry ends with zero callback and
  update errors.

Built over the small Figure 1 schemas so hundreds of notifications stay
fast, mirroring ``test_concurrency.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import Dataspace
from repro.engine.delta import MappingDelta, apply_mapping_delta
from repro.engine.streaming import DeltaBatch, apply_update
from repro.exceptions import MappingError

QUERIES = (
    "//INVOICE_PARTY//CONTACT_NAME",
    "//SUPPLIER_PARTY//CONTACT_NAME",
    "ORDER",
)


def hex_rows(rows):
    return sorted(
        (row.mapping_id, float(row.probability).hex(), row.matches) for row in rows
    )


def replay(events):
    assert events and events[0].kind == "initial"
    rows = apply_update([], events[0])
    for update in events[1:]:
        rows = apply_update(rows, update)
    return rows


def reweight_batch(mapping_set, extra_structural: bool) -> DeltaBatch:
    """A valid batch against ``mapping_set``: a probability rotation over
    mappings 0 and 1, optionally followed by a remove/re-add pair edit
    (structural churn with zero *net* dirt)."""
    p0, p1 = mapping_set[0].probability, mapping_set[1].probability
    deltas = [MappingDelta.build(reweight={0: p1, 1: p0})]
    if extra_structural and len(mapping_set[2].correspondences) > 1:
        shadow, _ = apply_mapping_delta(mapping_set, deltas[0])
        pair = sorted(mapping_set[2].correspondences)[-1]
        deltas.append(MappingDelta.build(remove=[(2, pair)]))
        shadow, _ = apply_mapping_delta(shadow, deltas[1])
        deltas.append(MappingDelta.build(add=[(2, pair)]))
    return DeltaBatch.build(deltas)


@pytest.fixture()
def session(source_schema, target_schema):
    """A rebuildable (unpinned) session over the Figure 1 schemas."""
    return Dataspace(source_schema, target_schema, h=5, seed=1, tau=0.3)


def _assert_stream_invariants(events, final_epoch):
    assert events[0].kind == "initial"
    baseline = events[0].delta_epoch
    epochs = [update.delta_epoch for update in events[1:]]
    assert epochs == sorted(set(epochs)), "duplicate or out-of-order update epochs"
    assert all(epoch > baseline for epoch in epochs), "update for a pre-baseline epoch"
    assert all(epoch <= final_epoch for epoch in epochs)


class TestStreamingUnderChurn:
    def test_interleaved_batches_configure_and_churn(self, session):
        stop = threading.Event()
        errors: list[BaseException] = []
        # Persistent subscribers: full and top-3 streams per query, recorded
        # into per-subscriber lists (delivery is serialized per standing
        # query under the registry's table lock).
        streams: list[tuple[str, object, list]] = []
        for query in QUERIES:
            for k in (None, 3):
                events: list = []
                handle = session.subscribe(query, k=k, callback=events.append)
                streams.append((query, handle, events))
        # Churned subscribers: registered and cancelled mid-stress; their
        # (possibly truncated) streams still obey the delivery invariants.
        churned: list[list] = []
        churned_lock = threading.Lock()

        def delta_writer():
            index = 0
            while not stop.is_set():
                try:
                    batch = reweight_batch(session.mapping_set, index % 4 == 3)
                    session.apply_delta_batch(batch)
                except MappingError:
                    # The batch was built against a mapping set configure()
                    # regenerated meanwhile; validation rejecting it is the
                    # designed outcome of that race.
                    pass
                index += 1
                time.sleep(0.001)

        def reconfigurer():
            for round_index in range(25):
                if stop.is_set():
                    break
                if round_index % 3 == 0:
                    session.configure(tau=0.2 + 0.3 * (round_index % 2))
                elif round_index % 3 == 1:
                    session.configure(h=3 + (round_index // 3) % 3)
                else:
                    session.invalidate()
                time.sleep(0.002)

        def churner(query):
            while not stop.is_set():
                events: list = []
                handle = session.subscribe(query, k=2, callback=events.append)
                deadline = time.monotonic() + 0.05
                while len(events) < 2 and time.monotonic() < deadline:
                    time.sleep(0.002)
                handle.cancel()
                with churned_lock:
                    churned.append(events)

        def run(target, *args):
            def wrapped():
                try:
                    target(*args)
                except BaseException as error:  # noqa: BLE001 - for the assertion
                    errors.append(error)
                    stop.set()

            return threading.Thread(target=wrapped)

        threads = [run(delta_writer), run(delta_writer), run(reconfigurer)]
        threads += [run(churner, query) for query in QUERIES[:2]]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

        # Quiesce: one final committed batch catches every standing query up
        # to the final generation/epoch (pending configure() bumps classify
        # as structural here), then the streams must replay exactly.
        session.apply_delta_batch(reweight_batch(session.mapping_set, False))
        final_epoch = session.delta_epoch

        for query, handle, events in streams:
            assert handle.active
            _assert_stream_invariants(events, final_epoch)
            expected = session.execute(query, k=handle.k, use_cache=False)
            assert hex_rows(replay(events)) == hex_rows(expected), (
                f"replayed stream diverges for {query!r} k={handle.k}"
            )
            handle.cancel()

        with churned_lock:
            churn_streams = list(churned)
        assert churn_streams, "churner threads never completed a subscription"
        for events in churn_streams:
            _assert_stream_invariants(events, final_epoch)

        # Per-epoch determinism across subscribers of one standing query:
        # same canonical (query, k, epoch) -> identical diff payload.
        by_key: dict[tuple, set] = {}
        all_streams = [events for _, _, events in streams] + churn_streams
        for events in all_streams:
            for update in events[1:]:
                key = (update.query, update.k, update.delta_epoch)
                payload = (update.added, update.removed, update.rescored, update.kind)
                by_key.setdefault(key, set()).add(payload)
        conflicting = {key for key, seen in by_key.items() if len(seen) != 1}
        assert not conflicting

        stats = session.subscriptions.stats()
        assert stats["callback_errors"] == 0
        assert stats["update_errors"] == 0
        assert stats["subscribed"] == stats["cancelled"]
        assert stats["subscribers"] == 0 and stats["standing_queries"] == 0

    def test_cancel_during_delivery_is_safe(self, session):
        """A callback that cancels its own subscription mid-notification."""
        events: list = []

        def cancel_on_first_update(update):
            events.append(update)
            if update.kind != "initial":
                handle.cancel()

        # "ORDER" keeps every mapping in the full result set, so each
        # probability rotation is guaranteed to produce a visible update.
        handle = session.subscribe("ORDER", callback=cancel_on_first_update)
        for _ in range(3):
            session.apply_delta_batch(reweight_batch(session.mapping_set, False))
        assert not handle.active
        updates = [update for update in events if update.kind != "initial"]
        assert len(updates) == 1, "updates delivered after self-cancellation"
        stats = session.subscriptions.stats()
        assert stats["callback_errors"] == 0 and stats["update_errors"] == 0
