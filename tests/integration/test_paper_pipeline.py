"""End-to-end integration tests over the synthetic corpus datasets.

These tests exercise the full pipeline the paper describes: match two
e-commerce schemas, derive the top-h possible mappings, build the block tree,
and answer probabilistic twig queries — checking the cross-algorithm
equivalences (basic vs block-tree, Murty vs partition, full PTQ vs top-k)
that the paper relies on.
"""

from __future__ import annotations

import pytest

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.mapping.generator import generate_top_h_mappings
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree
from repro.query.topk import evaluate_topk_ptq
from repro.workloads.datasets import build_mapping_set, load_dataset
from repro.workloads.queries import QUERY_IDS, load_query


def _answers(result):
    return {(answer.mapping_id, answer.matches) for answer in result}


class TestD7QueryWorkload:
    """All ten Table III queries over the D7 dataset."""

    @pytest.mark.parametrize("query_id", QUERY_IDS)
    def test_basic_and_blocktree_agree(self, query_id, d7_mappings, d7_document, d7_block_tree):
        query = load_query(query_id)
        basic = evaluate_ptq_basic(query, d7_mappings, d7_document)
        block = evaluate_ptq_blocktree(query, d7_mappings, d7_document, d7_block_tree)
        assert _answers(basic) == _answers(block)

    @pytest.mark.parametrize("query_id", QUERY_IDS)
    def test_queries_produce_answers(self, query_id, d7_mappings, d7_document):
        query = load_query(query_id)
        result = evaluate_ptq_basic(query, d7_mappings, d7_document)
        assert len(result) > 0
        assert result.non_empty(), f"{query_id} produced only empty answers"

    def test_probabilities_are_mapping_probabilities(self, d7_mappings, d7_document):
        query = load_query("Q2")
        result = evaluate_ptq_basic(query, d7_mappings, d7_document)
        probabilities = {m.mapping_id: m.probability for m in d7_mappings}
        for answer in result:
            assert answer.probability == pytest.approx(probabilities[answer.mapping_id])

    def test_value_distribution_of_contact_query(self, d7_mappings, d7_document):
        query = load_query("Q2")  # Order/DeliverTo/Contact/EMail
        result = evaluate_ptq_basic(query, d7_mappings, d7_document)
        distribution = result.value_distribution()
        assert distribution
        assert all(0.0 < probability <= 1.0 + 1e-9 for probability in distribution.values())
        # e-mail shaped values
        assert any("@" in (value or "") for value in distribution)


class TestBlockTreeConfigurationRobustness:
    """Fewer c-blocks may slow queries down but never change their answers."""

    @pytest.mark.parametrize("tau", [0.05, 0.4, 0.8])
    def test_tau_does_not_change_answers(self, tau, d7_mappings, d7_document):
        query = load_query("Q7")
        reference = evaluate_ptq_basic(query, d7_mappings, d7_document)
        tree = build_block_tree(d7_mappings, BlockTreeConfig(tau=tau))
        result = evaluate_ptq_blocktree(query, d7_mappings, d7_document, tree)
        assert _answers(result) == _answers(reference)

    def test_block_budget_does_not_change_answers(self, d7_mappings, d7_document):
        query = load_query("Q10")
        reference = evaluate_ptq_basic(query, d7_mappings, d7_document)
        tree = build_block_tree(d7_mappings, BlockTreeConfig(tau=0.2, max_blocks=3, max_failures=5))
        result = evaluate_ptq_blocktree(query, d7_mappings, d7_document, tree)
        assert _answers(result) == _answers(reference)


class TestTopKOnD7:
    @pytest.mark.parametrize("k", [1, 10, 50, 200])
    def test_topk_sizes(self, k, d7_mappings, d7_document, d7_block_tree):
        query = load_query("Q7")
        result = evaluate_topk_ptq(query, d7_mappings, d7_document, k=k, block_tree=d7_block_tree)
        assert len(result) <= k
        assert len(result) <= len(d7_mappings)

    def test_topk_matches_highest_probability_answers(self, d7_mappings, d7_document, d7_block_tree):
        query = load_query("Q5")
        full = evaluate_ptq_basic(query, d7_mappings, d7_document)
        topk = evaluate_topk_ptq(query, d7_mappings, d7_document, k=10, block_tree=d7_block_tree)
        full_sorted = sorted(full, key=lambda a: (-a.probability, a.mapping_id))[:10]
        assert {a.mapping_id for a in topk} == {a.mapping_id for a in full_sorted}


class TestSmallDatasetPipeline:
    def test_d1_murty_and_partition_agree_end_to_end(self, d1_dataset):
        murty = generate_top_h_mappings(d1_dataset.matching, 40, method="murty")
        partition = generate_top_h_mappings(d1_dataset.matching, 40, method="partition")
        assert [round(m.score, 6) for m in murty] == [round(m.score, 6) for m in partition]
        assert [round(m.probability, 9) for m in murty] == [
            round(m.probability, 9) for m in partition
        ]

    def test_d1_block_tree_compresses(self, d1_dataset):
        mapping_set = build_mapping_set("D1", 60)
        tree = build_block_tree(mapping_set)
        assert tree.num_blocks > 0
        assert tree.compression_ratio() > 0.0

    def test_d8_pipeline_runs(self):
        dataset = load_dataset("D8")
        mapping_set = build_mapping_set("D8", 50)
        tree = build_block_tree(mapping_set)
        assert len(mapping_set) == 50
        assert tree.num_blocks > 0
        assert 0.5 <= mapping_set.o_ratio() <= 1.0

    def test_table2_shapes(self):
        # Larger schema pairs produce larger capacities, as in Table II where
        # the XCBL/OpenTrans matchings dominate.
        small = load_dataset("D1").matching.capacity
        large = load_dataset("D9").matching.capacity
        assert large > small
