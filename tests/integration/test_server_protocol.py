"""Protocol conformance and differential tests for the network front-end.

The server's event loop runs on a dedicated background thread; the test body
talks to it over real TCP sockets from the main thread, exactly like an
external client.  This sidesteps the classic trap of issuing blocking client
calls from *inside* the server's own loop.

Covered here, per the serving contract (docs/serving.md):

* malformed frames, bad opcodes and oversized payloads answer with typed
  errors and close only when the stream is untrustworthy;
* mid-request and mid-head disconnects never wedge the server;
* admission sheds with :class:`~repro.api.OverloadedError` (typed, immediate
  — never a hang), drain refuses with
  :class:`~repro.api.ShuttingDownError`, deadlines surface as
  :class:`~repro.api.RequestTimeoutError`;
* streamed top-k responses reassemble into exactly the unstreamed bytes;
* and the differential pin: server response bytes are identical to
  in-process :class:`~repro.api.ApiHandler` execution, across kernel
  backends.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.api import (
    OverloadedError,
    QueryRequest,
    decode_response,
    encode_message,
)
from repro.api.handler import ApiHandler
from repro.api.serialize import canonical_json
from repro.engine import Dataspace
from repro.engine.kernels import available_backends
from repro.net import ReproClient, ReproServer, connect
from repro.net.framing import (
    FRAMING_VERSION,
    HEADER,
    HEADER_SIZE,
    MAGIC,
    OP_ERROR,
    OP_PING,
    OP_PONG,
    OP_REQUEST,
    OP_RESPONSE,
    OP_STREAM_END,
    OP_STREAM_ITEM,
    decode_header,
    encode_frame,
)
from repro.service import QueryService

DATASET = "D1"
H = 15


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
class ServerHarness:
    """A ReproServer running on its own event-loop thread."""

    def __init__(self, target, **kwargs):
        self.server = ReproServer(target, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="server-loop", daemon=True
        )
        self.thread.start()
        self.call(self.server.start())

    def call(self, coro, timeout: float = 30.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, *, drain: bool = True) -> None:
        if self.loop.is_closed():
            return
        self.call(self.server.stop(drain=drain))
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()


def raw_socket(port: int, timeout: float = 30.0) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def recv_exact(sock: socket.socket, n: int) -> bytes:
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("server closed the connection")
        data += chunk
    return data


def recv_frame(sock: socket.socket) -> tuple[int, bytes]:
    opcode, length = decode_header(
        recv_exact(sock, HEADER_SIZE), max_payload=1 << 30
    )
    return opcode, recv_exact(sock, length)


def send_request(sock: socket.socket, request) -> None:
    sock.sendall(encode_frame(OP_REQUEST, encode_message(request)))


def wire_error_of(payload: bytes) -> dict:
    return decode_response(payload).error


@pytest.fixture(scope="module")
def dataspace():
    return Dataspace.from_dataset(DATASET, h=H)


@pytest.fixture(scope="module")
def service(dataspace):
    with QueryService(dataspace, max_workers=4) as svc:
        yield svc


@pytest.fixture()
def harness(service):
    with ServerHarness(service, max_queue=8) as h:
        yield h


# --------------------------------------------------------------------------- #
# Differential: server bytes == in-process bytes, across backends
# --------------------------------------------------------------------------- #
class TestDifferential:
    @pytest.mark.parametrize("backend", available_backends())
    def test_server_response_bytes_match_in_process(self, backend):
        session = Dataspace.from_dataset(DATASET, h=H, kernels=backend)
        request = QueryRequest(query="Q1", k=5)
        with QueryService(session, max_workers=2) as svc:
            expected = encode_message(ApiHandler(svc).handle(request))
            with ServerHarness(svc) as harness:
                with raw_socket(harness.port) as sock:
                    send_request(sock, request)
                    opcode, payload = recv_frame(sock)
        assert opcode == OP_RESPONSE
        assert payload == expected

    def test_cached_and_uncached_responses_identical(self, harness):
        with raw_socket(harness.port) as sock:
            send_request(sock, QueryRequest(query="Q1", k=5, use_cache=True))
            _, cached = recv_frame(sock)
            send_request(sock, QueryRequest(query="Q1", k=5, use_cache=False))
            _, uncached = recv_frame(sock)
        assert cached == uncached

    def test_http_and_binary_bodies_identical(self, harness):
        with raw_socket(harness.port) as sock:
            send_request(sock, QueryRequest(query="Q1", k=5))
            _, binary_payload = recv_frame(sock)
        body = canonical_json({"query": "Q1", "k": 5})
        head = (
            f"POST /v1/query HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode()
        with raw_socket(harness.port) as sock:
            sock.sendall(head + body)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        header, _, http_payload = raw.partition(b"\r\n\r\n")
        assert header.startswith(b"HTTP/1.1 200")
        assert http_payload == binary_payload

    def test_client_result_matches_engine(self, harness, dataspace):
        with connect("127.0.0.1", harness.port) as client:
            remote = client.query("Q1", k=5)
        local = dataspace.execute("Q1", k=5)
        local_sorted = sorted(local, key=lambda a: a.mapping_id)
        assert [a.mapping_id for a in remote] == [
            a.mapping_id for a in local_sorted
        ]
        for got, want in zip(remote, local_sorted):
            assert got.probability == float(want.probability)


# --------------------------------------------------------------------------- #
# Framing violations
# --------------------------------------------------------------------------- #
class TestMalformedFrames:
    def test_bad_framing_version_errors_and_closes(self, harness):
        with raw_socket(harness.port) as sock:
            sock.sendall(HEADER.pack(MAGIC, FRAMING_VERSION + 1, OP_REQUEST, 0, 0))
            opcode, payload = recv_frame(sock)
            assert opcode == OP_ERROR
            assert wire_error_of(payload)["code"] == "protocol"
            assert sock.recv(1) == b""  # server closed

    def test_bad_opcode_errors_and_closes(self, harness):
        with raw_socket(harness.port) as sock:
            sock.sendall(HEADER.pack(MAGIC, FRAMING_VERSION, 99, 0, 0))
            opcode, payload = recv_frame(sock)
            assert opcode == OP_ERROR
            assert wire_error_of(payload)["code"] == "protocol"
            assert sock.recv(1) == b""

    def test_response_opcode_from_client_rejected(self, harness):
        with raw_socket(harness.port) as sock:
            sock.sendall(encode_frame(OP_RESPONSE, b"{}"))
            opcode, payload = recv_frame(sock)
            assert opcode == OP_ERROR
            assert wire_error_of(payload)["code"] == "protocol"
            assert sock.recv(1) == b""

    def test_non_json_request_payload_is_protocol_error(self, harness):
        with raw_socket(harness.port) as sock:
            sock.sendall(encode_frame(OP_REQUEST, b"\xff\xfenot json"))
            opcode, payload = recv_frame(sock)
            assert opcode == OP_ERROR
            assert wire_error_of(payload)["code"] == "protocol"
            assert sock.recv(1) == b""

    def test_bad_request_keeps_connection_open(self, harness):
        """Structural errors (unknown op) are recoverable: same connection
        serves the next request."""
        with raw_socket(harness.port) as sock:
            envelope = canonical_json({"v": 1, "op": "frobnicate", "body": {}})
            sock.sendall(encode_frame(OP_REQUEST, envelope))
            opcode, payload = recv_frame(sock)
            assert opcode == OP_ERROR
            assert wire_error_of(payload)["code"] == "bad-request"
            send_request(sock, QueryRequest(query="Q1", k=3))
            opcode, _ = recv_frame(sock)
            assert opcode == OP_RESPONSE

    def test_engine_error_is_typed_and_recoverable(self, harness):
        with raw_socket(harness.port) as sock:
            send_request(sock, QueryRequest(query="///not a twig///"))
            opcode, payload = recv_frame(sock)
            assert opcode == OP_ERROR
            assert wire_error_of(payload)["code"] in ("query", "twig-parse")
            send_request(sock, QueryRequest(query="Q1", k=3))
            opcode, _ = recv_frame(sock)
            assert opcode == OP_RESPONSE

    def test_ping_pong(self, harness):
        with raw_socket(harness.port) as sock:
            sock.sendall(encode_frame(OP_PING))
            assert recv_frame(sock) == (OP_PONG, b"")


class TestOversizedPayloads:
    def test_oversized_binary_frame_shed_with_typed_error(self, service):
        with ServerHarness(service, max_payload=256) as harness:
            with raw_socket(harness.port) as sock:
                sock.sendall(HEADER.pack(MAGIC, FRAMING_VERSION, OP_REQUEST, 0, 512))
                opcode, payload = recv_frame(sock)
                assert opcode == OP_ERROR
                assert wire_error_of(payload)["code"] == "payload-too-large"
                assert sock.recv(1) == b""

    def test_oversized_http_body_is_413(self, service):
        with ServerHarness(service, max_payload=256) as harness:
            head = (
                "POST /v1/query HTTP/1.1\r\nHost: x\r\n"
                "Content-Length: 512\r\n\r\n"
            ).encode()
            with raw_socket(harness.port) as sock:
                sock.sendall(head)
                raw = recv_exact(sock, len(b"HTTP/1.1 413"))
                assert raw == b"HTTP/1.1 413"


# --------------------------------------------------------------------------- #
# Disconnects
# --------------------------------------------------------------------------- #
class TestDisconnects:
    def test_disconnect_mid_frame_leaves_server_healthy(self, harness):
        frame = encode_frame(OP_REQUEST, encode_message(QueryRequest(query="Q1")))
        with raw_socket(harness.port) as sock:
            sock.sendall(frame[: len(frame) // 2])
        # The half-written connection is gone; a fresh one works.
        with raw_socket(harness.port) as sock:
            send_request(sock, QueryRequest(query="Q1", k=3))
            opcode, _ = recv_frame(sock)
            assert opcode == OP_RESPONSE

    def test_disconnect_before_response_read(self, harness):
        with raw_socket(harness.port) as sock:
            send_request(sock, QueryRequest(query="Q1"))
            # Close without reading the response: the server's write hits a
            # dead socket and must absorb it.
        time.sleep(0.05)
        with raw_socket(harness.port) as sock:
            send_request(sock, QueryRequest(query="Q1", k=3))
            opcode, _ = recv_frame(sock)
            assert opcode == OP_RESPONSE

    def test_disconnect_mid_http_head(self, harness):
        with raw_socket(harness.port) as sock:
            sock.sendall(b"POST /v1/query HT")
        with raw_socket(harness.port) as sock:
            send_request(sock, QueryRequest(query="Q1", k=3))
            opcode, _ = recv_frame(sock)
            assert opcode == OP_RESPONSE

    def test_immediate_disconnect(self, harness):
        for _ in range(3):
            raw_socket(harness.port).close()
        with raw_socket(harness.port) as sock:
            sock.sendall(encode_frame(OP_PING))
            assert recv_frame(sock) == (OP_PONG, b"")


# --------------------------------------------------------------------------- #
# Admission control, deadlines, drain
# --------------------------------------------------------------------------- #
def make_slow(server: ReproServer, delay: float) -> None:
    """Make query execution take ``delay`` seconds (runs on worker threads)."""
    handler = server._handler
    original = handler.handle

    def slow(request):
        if isinstance(request, QueryRequest):
            time.sleep(delay)
        return original(request)

    handler.handle = slow  # type: ignore[method-assign]


class TestAdmission:
    def test_shed_is_typed_and_immediate(self, service):
        with ServerHarness(
            service, max_inflight=1, max_queue=0, retry_after=0.3
        ) as harness:
            make_slow(harness.server, 1.0)
            with raw_socket(harness.port) as busy, raw_socket(harness.port) as shed:
                send_request(busy, QueryRequest(query="Q1"))
                time.sleep(0.1)  # the slow request now occupies the only slot
                started = time.monotonic()
                send_request(shed, QueryRequest(query="Q2"))
                opcode, payload = recv_frame(shed)
                elapsed = time.monotonic() - started
                error = wire_error_of(payload)
                assert opcode == OP_ERROR
                assert error["code"] == "overloaded"
                assert error["retry_after"] == 0.3
                # Shed, not queued behind the 1s request.
                assert elapsed < 0.5
                # The shed connection stays usable.
                shed.sendall(encode_frame(OP_PING))
                assert recv_frame(shed) == (OP_PONG, b"")
                # The busy connection still gets its answer.
                opcode, _ = recv_frame(busy)
                assert opcode == OP_RESPONSE

    def test_client_raises_typed_overloaded_error(self, service):
        with ServerHarness(service, max_inflight=1, max_queue=0) as harness:
            make_slow(harness.server, 1.0)
            with raw_socket(harness.port) as busy:
                send_request(busy, QueryRequest(query="Q1"))
                time.sleep(0.1)
                with connect("127.0.0.1", harness.port) as client:
                    with pytest.raises(OverloadedError) as info:
                        client.query("Q2")
                    assert info.value.retry_after > 0
                recv_frame(busy)

    def test_control_plane_bypasses_admission(self, service):
        """Ping and stats answer while the data plane is saturated."""
        with ServerHarness(service, max_inflight=1, max_queue=0) as harness:
            make_slow(harness.server, 1.0)
            with raw_socket(harness.port) as busy:
                send_request(busy, QueryRequest(query="Q1"))
                time.sleep(0.1)
                with connect("127.0.0.1", harness.port) as client:
                    client.health()
                    stats = client.stats()
                assert stats["server"]["inflight"] == 1
                assert stats["server"]["shed"] == 0
                recv_frame(busy)

    def test_timeout_is_typed(self, service):
        with ServerHarness(service, request_timeout=0.2) as harness:
            make_slow(harness.server, 1.5)
            with raw_socket(harness.port) as sock:
                send_request(sock, QueryRequest(query="Q1"))
                opcode, payload = recv_frame(sock)
                assert opcode == OP_ERROR
                assert wire_error_of(payload)["code"] == "timeout"
                # Deadline errors are recoverable: connection stays open.
                sock.sendall(encode_frame(OP_PING))
                assert recv_frame(sock) == (OP_PONG, b"")

    def test_reconfigure_under_load(self, service):
        with ServerHarness(service, max_inflight=1, max_queue=0) as harness:
            make_slow(harness.server, 0.5)
            with raw_socket(harness.port) as busy, raw_socket(harness.port) as second:
                send_request(busy, QueryRequest(query="Q1"))
                time.sleep(0.1)
                harness.call(_reconfigure(harness.server, max_inflight=2))
                send_request(second, QueryRequest(query="Q2"))
                opcode, _ = recv_frame(second)
                assert opcode == OP_RESPONSE
                recv_frame(busy)

    def test_drain_refuses_queued_with_shutting_down(self, service):
        with ServerHarness(service, max_inflight=1, max_queue=4) as harness:
            make_slow(harness.server, 0.8)
            with raw_socket(harness.port) as busy, raw_socket(harness.port) as queued:
                send_request(busy, QueryRequest(query="Q1"))
                time.sleep(0.1)
                send_request(queued, QueryRequest(query="Q2"))
                time.sleep(0.1)  # now queued behind the slow request
                stopper = threading.Thread(target=harness.stop)
                stopper.start()
                try:
                    # The queued request is refused, typed.
                    opcode, payload = recv_frame(queued)
                    assert opcode == OP_ERROR
                    assert wire_error_of(payload)["code"] == "shutting-down"
                    # The in-flight request still completes and is written.
                    opcode, _ = recv_frame(busy)
                    assert opcode == OP_RESPONSE
                finally:
                    stopper.join(15)


async def _reconfigure(server: ReproServer, **kwargs) -> None:
    server.reconfigure(**kwargs)


# --------------------------------------------------------------------------- #
# Streaming
# --------------------------------------------------------------------------- #
class TestStreaming:
    def test_stream_reassembles_to_unstreamed_bytes(self, harness):
        request = QueryRequest(query="Q1", k=5)
        with raw_socket(harness.port) as sock:
            send_request(sock, request)
            opcode, unstreamed = recv_frame(sock)
            assert opcode == OP_RESPONSE

            send_request(sock, QueryRequest(query="Q1", k=5, stream=True))
            answers = []
            while True:
                opcode, payload = recv_frame(sock)
                if opcode == OP_STREAM_ITEM:
                    answers.append(json.loads(payload))
                    continue
                assert opcode == OP_STREAM_END
                envelope = json.loads(payload)
                break
        envelope["body"]["result"]["answers"] = answers
        assert canonical_json(envelope) == unstreamed

    def test_client_stream_top_k(self, harness, dataspace):
        local = dataspace.execute("Q1", k=5)
        with connect("127.0.0.1", harness.port) as client:
            streamed = list(client.stream_top_k("Q1", k=5))
        assert [a.mapping_id for a in streamed] == sorted(
            a.mapping_id for a in local
        )


# --------------------------------------------------------------------------- #
# HTTP surface
# --------------------------------------------------------------------------- #
def http_exchange(port: int, request: bytes) -> tuple[int, dict]:
    with raw_socket(port) as sock:
        sock.sendall(request)
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(body) if body else {}


class TestHttp:
    def test_health(self, harness):
        status, payload = http_exchange(
            harness.port, b"GET /v1/health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        assert status == 200
        assert payload["op"] == "ping"

    def test_unknown_path_is_400(self, harness):
        status, payload = http_exchange(
            harness.port, b"GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        assert status == 400
        assert payload["body"]["error"]["code"] == "bad-request"

    def test_malformed_request_line_is_400_protocol(self, harness):
        status, payload = http_exchange(harness.port, b"BLORP\r\n\r\n")
        assert status == 400
        assert payload["body"]["error"]["code"] == "protocol"

    def test_overload_is_429_with_retry_after(self, service):
        with ServerHarness(
            service, max_inflight=1, max_queue=0, retry_after=0.4
        ) as harness:
            make_slow(harness.server, 1.0)
            with raw_socket(harness.port) as busy:
                send_request(busy, QueryRequest(query="Q1"))
                time.sleep(0.1)
                body = canonical_json({"query": "Q2"})
                head = (
                    f"POST /v1/query HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
                ).encode()
                with raw_socket(harness.port) as sock:
                    sock.sendall(head + body)
                    raw = b""
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        raw += chunk
                assert raw.startswith(b"HTTP/1.1 429")
                assert b"Retry-After: 0.4" in raw
                recv_frame(busy)
