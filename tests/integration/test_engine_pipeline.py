"""Integration: the engine facade reproduces the seed free-function pipeline.

The acceptance bar for the engine is exactness: on the paper's query dataset
(D7) every result produced through :class:`repro.engine.Dataspace` — full
PTQ, both plans, top-k, batched — must be identical to hand-threading the
artifacts through the seed free functions.
"""

from __future__ import annotations

import pytest

from repro.engine import Dataspace
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree
from repro.query.topk import evaluate_topk_ptq
from repro.workloads.queries import load_query


def answers_of(result):
    return {(answer.mapping_id, answer.matches) for answer in result}


@pytest.fixture(scope="module")
def d7_session():
    """One engine session over D7 with the paper's |M| = 100."""
    return Dataspace.from_dataset("D7", h=100)


class TestEngineMatchesSeedPipeline:
    def test_session_shares_workload_artifacts(self, d7_session, d7_mappings, d7_document):
        # The engine goes through the same cached workload builders, so the
        # artifacts are literally the same objects.
        assert d7_session.mapping_set is d7_mappings
        assert d7_session.document is d7_document

    def test_q7_blocktree_identical(self, d7_session, d7_mappings, d7_document, d7_block_tree):
        engine = d7_session.query("Q7").execute()
        seed = evaluate_ptq_blocktree(load_query("Q7"), d7_mappings, d7_document, d7_block_tree)
        assert answers_of(engine) == answers_of(seed)

    def test_q7_basic_identical(self, d7_session, d7_mappings, d7_document):
        engine = d7_session.query("Q7").plan("basic").execute()
        seed = evaluate_ptq_basic(load_query("Q7"), d7_mappings, d7_document)
        assert answers_of(engine) == answers_of(seed)

    def test_q7_compiled_identical_to_seed_basic(self, d7_session, d7_mappings, d7_document):
        engine = d7_session.query("Q7").plan("compiled").execute()
        seed = evaluate_ptq_basic(load_query("Q7"), d7_mappings, d7_document)
        assert answers_of(engine) == answers_of(seed)

    def test_q7_topk_identical(self, d7_session, d7_mappings, d7_document, d7_block_tree):
        engine = d7_session.query("Q7").top_k(10).execute()
        seed = evaluate_topk_ptq(
            load_query("Q7"), d7_mappings, d7_document, k=10, block_tree=d7_block_tree
        )
        assert answers_of(engine) == answers_of(seed)

    def test_batch_identical_to_seed_loop(
        self, d7_session, d7_mappings, d7_document, d7_block_tree
    ):
        query_ids = ["Q1", "Q2", "Q3"]
        batch = d7_session.batch(query_ids)
        for query_id, engine in zip(query_ids, batch):
            seed = evaluate_ptq_blocktree(
                load_query(query_id), d7_mappings, d7_document, d7_block_tree
            )
            assert answers_of(engine) == answers_of(seed)

    def test_explain_reports_compiled_default_plan(self, d7_session):
        report = d7_session.query("Q7").explain()
        assert report.plan == "compiled"
        assert report.num_mappings == 100
        assert report.num_relevant > 0
        assert report.num_answers == report.num_relevant
        stats = report.compiled_stats
        assert stats is not None
        # The whole point of the compiled plan: far fewer distinct rewrites
        # than relevant mappings on the paper's workload.
        assert stats["num_distinct_rewrites"] < report.num_relevant
        assert stats["evaluations_saved"] > 0

    def test_explain_forced_blocktree_reports_blocks(self, d7_session):
        report = d7_session.query("Q7").plan("blocktree").explain()
        assert report.plan == "blocktree"
        assert report.num_blocks == d7_session.block_tree.num_blocks

    def test_query_string_and_id_agree(self, d7_session):
        from repro.workloads.queries import QUERY_STRINGS

        by_id = d7_session.query("Q2").execute()
        by_text = d7_session.query(QUERY_STRINGS["Q2"]).execute()
        assert answers_of(by_id) == answers_of(by_text)
