"""Property-based tests for block-tree invariants and end-to-end generation.

A random scenario is a small random target schema, a random source schema,
random correspondences, and a random set of possible mappings drawn from
them.  On every scenario the block tree must satisfy the c-block definition
(Definition 2) exactly, whatever τ and the budgets are.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.mapping.generator import generate_top_h_mappings
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.schema.schema import Schema


def _random_schema(rng: random.Random, name: str, size: int) -> Schema:
    schema = Schema(name)
    root = schema.add_root(f"{name}Root")
    elements = [root]
    for index in range(size - 1):
        parent = rng.choice(elements)
        element = schema.add_child(parent, f"{name}E{index}")
        elements.append(element)
    return schema.freeze()


@st.composite
def random_scenarios(draw):
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    source_size = draw(st.integers(3, 10))
    target_size = draw(st.integers(2, 8))
    source = _random_schema(rng, "S", source_size)
    target = _random_schema(rng, "T", target_size)

    matching = SchemaMatching(source, target, name=f"rand{seed}")
    for target_id in range(target_size):
        for source_id in rng.sample(range(source_size), k=min(source_size, rng.randint(1, 3))):
            if matching.get(source_id, target_id) is None:
                matching.add_pair(source_id, target_id, round(rng.uniform(0.3, 1.0), 3))

    num_mappings = draw(st.integers(2, 8))
    mappings = []
    for mapping_id in range(num_mappings):
        used_sources: set[int] = set()
        keys = set()
        for target_id in range(target_size):
            options = [c for c in matching.for_target(target_id) if c.source_id not in used_sources]
            if options and rng.random() < 0.8:
                chosen = rng.choice(options)
                keys.add(chosen.key)
                used_sources.add(chosen.source_id)
        mappings.append(
            Mapping(mapping_id, frozenset(keys), score=round(rng.uniform(0.5, 2.0), 3))
        )
    mapping_set = MappingSet(matching, mappings)
    tau = draw(st.sampled_from([0.1, 0.25, 0.5, 0.9]))
    return mapping_set, tau


class TestBlockTreeInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_scenarios())
    def test_cblock_definition_holds(self, scenario):
        mapping_set, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        target = tree.target_schema
        min_support = tau * len(mapping_set)
        for block in tree.iter_blocks():
            anchor = target.get(block.anchor_id)
            subtree_ids = {element.element_id for element in anchor.iter_subtree()}
            assert block.covered_target_ids() == subtree_ids
            assert block.size == len(subtree_ids)
            assert block.support >= min_support
            for mapping_id in block.mapping_ids:
                assert block.correspondences <= mapping_set[mapping_id].correspondences

    @settings(max_examples=40, deadline=None)
    @given(random_scenarios())
    def test_blocks_at_one_anchor_have_disjoint_mappings(self, scenario):
        mapping_set, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        for element in tree.target_schema.iter_preorder():
            blocks = tree.blocks_at(element.element_id)
            seen: set[int] = set()
            for block in blocks:
                assert not (block.mapping_ids & seen)
                seen.update(block.mapping_ids)

    @settings(max_examples=40, deadline=None)
    @given(random_scenarios())
    def test_hash_table_consistent(self, scenario):
        mapping_set, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        for element in tree.target_schema.iter_preorder():
            node = tree.node_for_element(element.element_id)
            if node.has_blocks:
                assert tree.hash_table.get(element.path) is node
            else:
                assert element.path not in tree.hash_table

    @settings(max_examples=30, deadline=None)
    @given(random_scenarios())
    def test_monotone_in_tau(self, scenario):
        mapping_set, _ = scenario
        low = build_block_tree(mapping_set, BlockTreeConfig(tau=0.1))
        high = build_block_tree(mapping_set, BlockTreeConfig(tau=0.9))
        assert high.num_blocks <= low.num_blocks

    @settings(max_examples=30, deadline=None)
    @given(random_scenarios())
    def test_residuals_complement_block_coverage(self, scenario):
        mapping_set, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        for mapping in mapping_set:
            residual = tree.residual_correspondences(mapping.mapping_id)
            covered = mapping.correspondences - residual
            for key in covered:
                assert any(
                    mapping.mapping_id in block.mapping_ids and key in block.correspondences
                    for block in tree.iter_blocks()
                )


class TestGenerationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(random_scenarios(), st.integers(1, 10))
    def test_partition_and_murty_score_sequences_agree(self, scenario, h):
        mapping_set, _ = scenario
        matching = mapping_set.matching
        murty = generate_top_h_mappings(matching, h, method="murty", backend="python")
        partition = generate_top_h_mappings(matching, h, method="partition", backend="python")
        assert [round(m.score, 6) for m in murty] == [round(m.score, 6) for m in partition]

    @settings(max_examples=25, deadline=None)
    @given(random_scenarios(), st.integers(1, 10))
    def test_generated_mappings_are_valid_and_normalised(self, scenario, h):
        mapping_set, _ = scenario
        matching = mapping_set.matching
        generated = generate_top_h_mappings(matching, h, method="partition", backend="python")
        assert sum(m.probability for m in generated) == 1.0 or abs(
            sum(m.probability for m in generated) - 1.0
        ) < 1e-9
        for mapping in generated:
            for key in mapping.correspondences:
                assert matching.get(*key) is not None
