"""Shared hypothesis strategies for the property suites.

``query_scenarios`` builds a complete random PTQ scenario — schema pair,
matching, mapping set, conforming document and twig query — and is used both
by the algorithmic equivalence suite (``test_prop_query``) and the engine /
service differential suite (``test_prop_plan_equivalence``).
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.document.document import XMLDocument
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.query.twig import AXIS_CHILD, AXIS_DESCENDANT, TwigNode, TwigQuery
from repro.schema.schema import Schema

__all__ = ["query_scenarios", "random_tree_schema"]


def random_tree_schema(rng: random.Random, name: str, size: int, labels: list[str]) -> Schema:
    """A random schema tree of ``size`` elements drawn from ``labels``."""
    schema = Schema(name)
    root = schema.add_root(labels[0])
    elements = [root]
    for index in range(1, size):
        parent = rng.choice(elements)
        label = f"{rng.choice(labels)}{index}"
        elements.append(schema.add_child(parent, label, repeatable=rng.random() < 0.3))
    return schema.freeze()


@st.composite
def query_scenarios(draw):
    """A random matching, mapping set, conforming document and twig query."""
    seed = draw(st.integers(0, 100_000))
    rng = random.Random(seed)
    labels = ["Order", "Party", "Contact", "Name", "Line", "Qty", "Price", "City"]
    source = random_tree_schema(rng, "S", draw(st.integers(4, 12)), labels)
    target = random_tree_schema(rng, "T", draw(st.integers(3, 8)), labels)

    matching = SchemaMatching(source, target, name=f"q{seed}")
    source_ids = list(range(len(source)))
    for target_id in range(len(target)):
        for source_id in rng.sample(source_ids, k=min(len(source_ids), rng.randint(1, 3))):
            if matching.get(source_id, target_id) is None:
                matching.add_pair(source_id, target_id, round(rng.uniform(0.3, 1.0), 3))

    mappings = []
    for mapping_id in range(draw(st.integers(2, 6))):
        used: set[int] = set()
        keys = set()
        for target_id in range(len(target)):
            options = [c for c in matching.for_target(target_id) if c.source_id not in used]
            if options and rng.random() < 0.85:
                chosen = rng.choice(options)
                keys.add(chosen.key)
                used.add(chosen.source_id)
        mappings.append(Mapping(mapping_id, frozenset(keys), score=round(rng.uniform(0.5, 2.0), 3)))
    mapping_set = MappingSet(matching, mappings)

    # A conforming document: instantiate everything once, then add a few
    # extra instances of repeatable elements.
    document = XMLDocument(source, "random.xml")

    def instantiate(element, parent_node):
        node = document.add_root(element.element_id) if parent_node is None else document.add_child(
            parent_node, element.element_id
        )
        if element.is_leaf:
            node.value = rng.choice(["Cathy", "Bob", "Alice", "42"])
        for child in element.children:
            instantiate(child, node)
        return node

    instantiate(source.root, None)
    repeatable = [e for e in source.iter_preorder() if e.repeatable and e.parent is not None]
    for _ in range(rng.randint(0, 4)):
        if not repeatable:
            break
        element = rng.choice(repeatable)
        parents = document.nodes_of_element(element.parent.element_id)
        instantiate(element, rng.choice(parents))
    document.finalize()

    # A random query: a downward path in the target schema plus optional branches.
    target_elements = list(target.iter_preorder())
    anchor = rng.choice(target_elements)
    path = [anchor]
    while path[-1].children and rng.random() < 0.7:
        path.append(rng.choice(path[-1].children))
    root_axis = AXIS_CHILD if anchor is target.root else AXIS_DESCENDANT
    query_root = TwigNode(path[0].label, axis=root_axis)
    current = query_root
    for element in path[1:]:
        axis = AXIS_CHILD if rng.random() < 0.7 else AXIS_DESCENDANT
        current = current.add_child(TwigNode(element.label, axis=axis))
    # optional predicate branch from the query root
    if anchor.children and rng.random() < 0.5:
        branch = rng.choice(anchor.children)
        query_root.add_child(TwigNode(branch.label, axis=AXIS_CHILD, on_main_path=False))
    query = TwigQuery(query_root, text="random")

    tau = draw(st.sampled_from([0.1, 0.3, 0.6]))
    return mapping_set, document, query, tau
