"""Differential properties: persist → reopen ≡ never having restarted.

The persistent artifact store's core contract (ISSUE 6) is that a session
reopened from a populated store is *indistinguishable* from the session that
persisted it.  On hypothesis-generated scenarios this suite pins:

* a reopened ``CompiledMappingSet`` is dict-equal, column by column, to a
  fresh compile of the original mapping set;
* query results are byte-identical across every plan and across shard
  counts {1, 2, 4, 7} after a round trip;
* state produced by chained deltas survives a round trip — the reopened
  session answers exactly like the session that applied the deltas;
* an overlay-staged delta is queryable without touching the base store
  (byte-identical blocks and refs), and committing the overlay produces the
  very same manifest as applying the delta directly against the base —
  content addressing makes the equivalence literal key equality.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from _scenarios import query_scenarios
from test_prop_delta_equivalence import random_delta
from repro.engine import Dataspace
from repro.engine.kernels import available_backends
from repro.mapping.mapping_set import MappingSet
from repro.store import MemoryBlockStore, OverlayBlockStore

#: Kernel backends importable in this process.
BACKENDS = available_backends()


def answer_list(result):
    """Canonical, order-pinned view of a PTQ result (exact probabilities)."""
    return [
        (answer.mapping_id, answer.probability, sorted(answer.matches))
        for answer in result
    ]


def open_session(scenario, kernels=None) -> Dataspace:
    mapping_set, document, _, tau = scenario
    return Dataspace.from_mapping_set(
        mapping_set, document=document, tau=tau, kernels=kernels
    )


def roundtrip(session: Dataspace, kernels=None) -> Dataspace:
    """Persist ``session`` into a fresh store and reopen it from there."""
    store = MemoryBlockStore()
    report = session.persist(store)
    return Dataspace.from_store(store, report["ref"], kernels=kernels)


class TestStoreRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(query_scenarios())
    def test_reopened_compiled_equals_fresh_compile(self, scenario):
        mapping_set, _, _, _ = scenario
        session = open_session(scenario)
        session.compiled  # ensure the compiled columns are persisted
        reopened = roundtrip(session)
        assert reopened.mapping_set.is_compiled, "compiled artifact not restored"
        compiled = reopened.compiled
        fresh = MappingSet(
            mapping_set.matching, mapping_set.mappings, normalize=False
        ).compile()
        assert compiled.num_mappings == fresh.num_mappings
        assert compiled.all_mask == fresh.all_mask
        assert compiled.probabilities == fresh.probabilities
        assert compiled._pair_masks == fresh._pair_masks
        assert compiled._covered_masks == fresh._covered_masks
        assert compiled._target_sources == fresh._target_sources

    @settings(max_examples=20, deadline=None)
    @given(query_scenarios())
    def test_results_identical_across_plans(self, scenario):
        _, _, query, _ = scenario
        session = open_session(scenario)
        reopened = roundtrip(session)
        for plan in ("basic", "blocktree", "compiled"):
            expected = answer_list(session.execute(query, plan=plan, use_cache=False))
            got = answer_list(reopened.execute(query, plan=plan, use_cache=False))
            assert got == expected, f"plan {plan} diverges after reopen"
        assert answer_list(session.execute(query, k=2, use_cache=False)) == answer_list(
            reopened.execute(query, k=2, use_cache=False)
        )

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios(), st.sampled_from([1, 2, 4, 7]))
    def test_sharded_results_identical_after_reopen(self, scenario, num_shards):
        _, _, query, _ = scenario
        session = open_session(scenario)
        expected = answer_list(session.execute(query, use_cache=False))
        # Shard the original (remembering its partition layout), persist,
        # then shard the reopened session: the restored layout must produce
        # byte-identical scatter-gather answers.
        assert answer_list(session.shard(num_shards).execute(query)) == expected
        reopened = roundtrip(session)
        corpus = reopened.shard(num_shards)
        assert answer_list(corpus.execute(query, use_cache=False)) == expected
        assert corpus.describe()["partitions_restored"] >= 1

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios(), st.integers(0, 100_000), st.integers(0, 100_000))
    def test_chained_delta_state_survives_roundtrip(self, scenario, seed_a, seed_b):
        _, _, query, _ = scenario
        session = open_session(scenario)
        session.execute(query)
        session.apply_delta(random_delta(session.mapping_set, seed_a))
        session.apply_delta(random_delta(session.mapping_set, seed_b))
        reopened = roundtrip(session)
        assert reopened.delta_epoch == session.delta_epoch
        assert answer_list(reopened.execute(query, use_cache=False)) == answer_list(
            session.execute(query, use_cache=False)
        )

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios())
    def test_cross_backend_roundtrip_identical(self, scenario):
        """Persist under one backend, reopen under another — same bytes.

        The stored compiled columns are backend-neutral Python-int masks, so
        every (persist backend, reopen backend) pairing must produce
        dict-equal columns and bit-identical answers.  On a numpy-less
        interpreter this degenerates to python→python.
        """
        _, _, query, _ = scenario
        reference = None
        for persist_backend in BACKENDS:
            session = open_session(scenario, kernels=persist_backend)
            session.compiled  # ensure the compiled columns are persisted
            expected = answer_list(session.execute(query, use_cache=False))
            for reopen_backend in BACKENDS:
                reopened = roundtrip(session, kernels=reopen_backend)
                assert reopened.kernels.name == reopen_backend
                compiled = reopened.compiled
                assert compiled.kernels.name == reopen_backend
                assert compiled._pair_masks == session.compiled._pair_masks
                assert compiled._covered_masks == session.compiled._covered_masks
                assert compiled._target_sources == session.compiled._target_sources
                assert compiled.probabilities == session.compiled.probabilities
                got = answer_list(reopened.execute(query, use_cache=False))
                assert got == expected, (
                    f"answers diverge persisting under {persist_backend!r} and "
                    f"reopening under {reopen_backend!r}"
                )
                if reference is None:
                    reference = got
                else:
                    assert got == reference
                assert reopened.explain(query).compiled_stats["kernel_backend"] == (
                    reopen_backend
                )

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios(), st.integers(0, 100_000))
    def test_overlay_staged_delta_leaves_base_untouched(self, scenario, seed):
        _, _, query, _ = scenario
        session = open_session(scenario)
        base = MemoryBlockStore()
        ref = session.persist(base)["ref"]
        base_blocks = {key: base.get_block(key) for key in base.iter_keys()}
        base_refs = base.refs()
        delta = random_delta(session.mapping_set, seed)

        # Stage the delta behind an overlay: the write-through lands in the
        # upper layer only.
        overlay = OverlayBlockStore(lower=base)
        staged = Dataspace.from_store(overlay, ref)
        staged.apply_delta(delta)
        staged_manifest = overlay.upper.get_ref(ref)
        assert staged_manifest is not None, "write-through did not stage a manifest"
        assert base.refs() == base_refs
        assert {key: base.get_block(key) for key in base.iter_keys()} == base_blocks

        # Applying the same delta directly (behind a second, independent
        # overlay) produces the *same* manifest key: canonical bytes make
        # "commit the staged overlay" ≡ "apply the delta against the base".
        shadow = OverlayBlockStore(lower=base)
        direct = Dataspace.from_store(shadow, ref)
        direct.apply_delta(delta)
        assert shadow.upper.get_ref(ref) == staged_manifest

        # Staged state is queryable without committing...
        expected = answer_list(direct.execute(query, use_cache=False))
        assert answer_list(staged.execute(query, use_cache=False)) == expected

        # ...and committing flushes exactly that state into the base.
        overlay.commit()
        assert base.get_ref(ref) == staged_manifest
        committed = Dataspace.from_store(base, ref)
        assert committed.delta_epoch == staged.delta_epoch
        assert answer_list(committed.execute(query, use_cache=False)) == expected
