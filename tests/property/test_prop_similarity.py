"""Property-based tests for the similarity measures."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.similarity import (
    edit_similarity,
    levenshtein,
    name_similarity,
    token_set_similarity,
    tokenize,
    trigram_similarity,
)

labels = st.text(
    alphabet=st.sampled_from("abcdefgABCDEFG_"), min_size=1, max_size=12
).filter(lambda s: any(c.isalpha() for c in s))
words = st.text(alphabet=st.sampled_from("abcdefgh"), min_size=0, max_size=10)


class TestLevenshteinProperties:
    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(words, words)
    def test_upper_bound(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(words, words)
    def test_lower_bound_length_difference(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @settings(max_examples=50)
    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestSimilarityBounds:
    @given(words, words)
    def test_edit_similarity_unit_interval(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0

    @given(words, words)
    def test_trigram_similarity_unit_interval(self, a, b):
        assert 0.0 <= trigram_similarity(a, b) <= 1.0

    @given(labels, labels)
    def test_name_similarity_unit_interval(self, a, b):
        assert 0.0 <= name_similarity(a, b) <= 1.0

    @given(labels)
    def test_name_similarity_identity(self, a):
        assert name_similarity(a, a) == 1.0

    @given(labels, labels)
    def test_name_similarity_roughly_symmetric(self, a, b):
        assert abs(name_similarity(a, b) - name_similarity(b, a)) < 0.35

    @given(st.lists(words.filter(bool), min_size=0, max_size=5).map(tuple),
           st.lists(words.filter(bool), min_size=0, max_size=5).map(tuple))
    def test_token_set_similarity_unit_interval(self, a, b):
        assert 0.0 <= token_set_similarity(a, b) <= 1.0


class TestTokenizeProperties:
    @given(labels)
    def test_tokens_lowercase_and_nonempty(self, label):
        for token in tokenize(label):
            assert token == token.lower()
            assert token

    @given(labels)
    def test_tokens_cover_alphanumerics(self, label):
        joined = "".join(tokenize(label))
        stripped = "".join(c.lower() for c in label if c.isalnum())
        assert joined == stripped

    @given(labels)
    def test_deterministic(self, label):
        assert tokenize(label) == tokenize(label)
