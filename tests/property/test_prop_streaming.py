"""Differential properties of the streaming notification engine.

The standing-query contract (ISSUE 10) is that the incremental notification
stream is *lossless*: folding every delivered
:class:`~repro.engine.streaming.SubscriptionUpdate` onto the subscription's
initial result set (:func:`~repro.engine.streaming.apply_update`) must
reproduce — byte for byte, probabilities compared via ``float.hex()`` — what
re-executing the standing query from scratch at the final epoch returns.  On
hypothesis-generated scenarios with random delta-batch chains this suite pins
that property:

* against uncached re-execution in the same session and against a rebuilt
  from-scratch reference session, for full (``k=None``) and top-k standing
  queries;
* across every evaluation plan (``basic``, ``blocktree``, ``compiled``) and
  every importable kernel backend;
* across scatter-gather execution at shard counts {1, 2, 4, 7};
* together with the delivery invariants: updates arrive in strictly
  increasing epoch order, never for an epoch from before the subscription's
  baseline, and at most once per committed epoch.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _scenarios import query_scenarios
from repro.engine import Dataspace, apply_mapping_delta
from repro.engine.kernels import available_backends
from repro.engine.streaming import DeltaBatch, apply_update
from repro.mapping.mapping_set import MappingSet
from test_prop_delta_equivalence import random_delta

BACKENDS = available_backends()

#: Scatter-gather layouts the replayed stream is pinned against.
SHARD_COUNTS = (1, 2, 4, 7)


def hex_rows(rows) -> list[tuple]:
    """Byte-stable view of answer rows: ``float.hex()`` probabilities."""
    return sorted(
        (row.mapping_id, row.probability.hex(), row.matches) for row in rows
    )


def random_batch(mapping_set, seed: int):
    """A valid batch of 1-3 random deltas, each built against the state its
    predecessors leave behind (the same validation the engine applies)."""
    rng = random.Random(seed)
    current = mapping_set
    deltas = []
    for _ in range(rng.randint(1, 3)):
        delta = random_delta(current, rng.randrange(1_000_000))
        if delta.is_empty():
            continue
        current, _ = apply_mapping_delta(current, delta)
        deltas.append(delta)
    return DeltaBatch.build(deltas) if deltas else None


def reference_session(session: Dataspace, document, tau) -> Dataspace:
    """A from-scratch session over the delta session's *current* mappings."""
    rebuilt = MappingSet(
        session.mapping_set.matching, session.mapping_set.mappings, normalize=False
    )
    return Dataspace.from_mapping_set(rebuilt, document=document, tau=tau)


def replayed_rows(events) -> list:
    """Fold a recorded notification stream onto its initial result set."""
    assert events and events[0].kind == "initial"
    rows = apply_update([], events[0])
    for update in events[1:]:
        rows = apply_update(rows, update)
    return rows


class TestStreamingReplay:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=15, deadline=None)
    @given(
        scenario=query_scenarios(),
        seeds=st.lists(st.integers(0, 100_000), min_size=1, max_size=3),
    )
    def test_replay_identical_to_scratch_all_plans(self, backend, scenario, seeds):
        mapping_set, document, query, tau = scenario
        session = Dataspace.from_mapping_set(
            mapping_set, document=document, tau=tau, kernels=backend
        )
        full_events, topk_events = [], []
        session.subscribe(query, callback=full_events.append)
        session.subscribe(query, k=2, callback=topk_events.append)

        for seed in seeds:
            batch = random_batch(session.mapping_set, seed)
            if batch is not None:
                session.apply_delta_batch(batch)

        full_rows = replayed_rows(full_events)
        topk_rows = replayed_rows(topk_events)
        assert hex_rows(full_rows) == hex_rows(
            session.execute(query, use_cache=False)
        )
        assert hex_rows(topk_rows) == hex_rows(
            session.execute(query, k=2, use_cache=False)
        )
        reference = reference_session(session, document, tau)
        for plan in ("basic", "blocktree", "compiled"):
            assert hex_rows(full_rows) == hex_rows(
                reference.execute(query, plan=plan, use_cache=False)
            ), f"replayed stream diverges from plan {plan}"

    @settings(max_examples=10, deadline=None)
    @given(
        scenario=query_scenarios(),
        seeds=st.lists(st.integers(0, 100_000), min_size=1, max_size=2),
        num_shards=st.sampled_from(SHARD_COUNTS),
    )
    def test_replay_identical_to_scatter_gather(self, scenario, seeds, num_shards):
        mapping_set, document, query, tau = scenario
        session = Dataspace.from_mapping_set(mapping_set, document=document, tau=tau)
        events = []
        session.subscribe(query, callback=events.append)
        for seed in seeds:
            batch = random_batch(session.mapping_set, seed)
            if batch is not None:
                session.apply_delta_batch(batch)
        corpus = session.shard(num_shards)
        assert hex_rows(replayed_rows(events)) == hex_rows(
            corpus.execute(query, use_cache=False)
        )

    @settings(max_examples=15, deadline=None)
    @given(
        scenario=query_scenarios(),
        seeds=st.lists(st.integers(0, 100_000), min_size=1, max_size=4),
    )
    def test_delivery_invariants(self, scenario, seeds):
        """Epoch monotonicity, no pre-baseline epochs, one update per epoch."""
        mapping_set, document, query, tau = scenario
        session = Dataspace.from_mapping_set(mapping_set, document=document, tau=tau)
        events = []
        handle = session.subscribe(query, k=3, callback=events.append)
        baseline_epoch = events[0].delta_epoch

        committed = 0
        for seed in seeds:
            batch = random_batch(session.mapping_set, seed)
            if batch is not None:
                session.apply_delta_batch(batch)
                committed += 1

        epochs = [update.delta_epoch for update in events[1:]]
        assert epochs == sorted(set(epochs)), "updates out of order or duplicated"
        assert all(epoch > baseline_epoch for epoch in epochs)
        assert all(epoch <= session.delta_epoch for epoch in epochs)
        assert len(events) - 1 <= committed
        assert handle.updates_delivered == len(events)
        assert handle.cancel()
        assert not handle.active
