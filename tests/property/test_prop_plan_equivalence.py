"""Differential properties: every execution path returns identical answers.

The paper's correctness claim (Algorithm 3 ≡ Algorithm 4) is extended here to
the whole serving stack: on hypothesis-generated scenarios, the engine's
``basic``, ``blocktree`` and ``compiled`` plans, the cached and uncached
paths, the batch executor (sequential and thread-pooled) and the concurrent
:class:`~repro.service.QueryService` must all return exactly the same
:class:`~repro.query.results.PTQResult` contents.  This is the safety net
that lets future perf PRs refactor hot paths without changing answers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _scenarios import query_scenarios
from repro.engine import Dataspace
from repro.engine.kernels import available_backends
from repro.service import QueryService

#: Kernel backends importable in this process; the differential suites run
#: per backend, so the numpy kernels are pinned to the Python reference
#: wherever numpy is installed.
BACKENDS = available_backends()


def answer_set(result):
    return {(answer.mapping_id, answer.matches, answer.probability) for answer in result}


def canonical_answers(result):
    """Byte-exact serialisation: probabilities via ``float.hex()``."""
    return sorted(
        (answer.mapping_id, sorted(map(sorted, answer.matches)), answer.probability.hex())
        for answer in result
    )


def open_session(scenario, cache_size=128, kernels=None):
    mapping_set, document, query, tau = scenario
    session = Dataspace.from_mapping_set(
        mapping_set, document=document, tau=tau, cache_size=cache_size, kernels=kernels
    )
    return session, query


class TestPlanEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=30, deadline=None)
    @given(scenario=query_scenarios())
    def test_all_plans_identical(self, backend, scenario):
        session, query = open_session(scenario, kernels=backend)
        basic = session.execute(query, plan="basic", use_cache=False)
        tree = session.execute(query, plan="blocktree", use_cache=False)
        compiled = session.execute(query, plan="compiled", use_cache=False)
        auto = session.execute(query, use_cache=False)  # auto == compiled default
        assert (
            answer_set(basic)
            == answer_set(tree)
            == answer_set(compiled)
            == answer_set(auto)
        )

    @settings(max_examples=30, deadline=None)
    @given(query_scenarios(), st.integers(1, 6))
    def test_topk_identical_across_plans(self, scenario, k):
        session, query = open_session(scenario)
        basic = session.execute(query, k=k, plan="basic", use_cache=False)
        tree = session.execute(query, k=k, plan="blocktree", use_cache=False)
        compiled = session.execute(query, k=k, plan="compiled", use_cache=False)
        assert answer_set(basic) == answer_set(tree) == answer_set(compiled)

    @settings(max_examples=20, deadline=None)
    @given(query_scenarios())
    def test_compiled_filter_matches_plain_scan(self, scenario):
        # The compiled bitset filter must select exactly the mappings the
        # seed per-mapping scan would, in the same order.
        from repro.query.ptq import filter_mappings
        from repro.query.resolve import resolve_query

        mapping_set, _, query, _ = scenario
        embeddings = resolve_query(query, mapping_set.matching.target)
        via_bitsets = filter_mappings(mapping_set, embeddings)
        via_scan = filter_mappings(list(mapping_set), embeddings)
        assert via_bitsets == via_scan


class TestCacheEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(query_scenarios())
    def test_cached_equals_uncached(self, scenario):
        session, query = open_session(scenario)
        uncached = session.execute(query, use_cache=False)
        miss = session.execute(query)  # populates the cache
        hit = session.execute(query)  # must be served from it
        assert hit is miss
        assert answer_set(uncached) == answer_set(hit)
        assert session.result_cache.stats().hits >= 1

    @settings(max_examples=20, deadline=None)
    @given(query_scenarios())
    def test_cache_disabled_session_identical(self, scenario):
        cached_session, query = open_session(scenario)
        uncached_session, _ = open_session(scenario, cache_size=0)
        assert answer_set(cached_session.execute(query)) == answer_set(
            uncached_session.execute(query)
        )


class TestShardedCorpusEquivalence:
    """Scatter-gather over any shard count ≡ the unsharded compiled plan.

    The scenarios include branchy queries (predicate branches off the query
    root), so the corpus' spine pass — the only place a sharded evaluation
    could lose crossing matches — is exercised adversarially.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=20, deadline=None)
    @given(scenario=query_scenarios(), num_shards=st.sampled_from([1, 2, 4, 7]))
    def test_sharded_execute_identical(self, backend, scenario, num_shards):
        session, query = open_session(scenario, kernels=backend)
        corpus = session.shard(num_shards)
        unsharded = session.execute(query, use_cache=False)
        sharded = corpus.execute(query, use_cache=False)
        cached = corpus.execute(query)
        assert answer_set(sharded) == answer_set(unsharded)
        assert answer_set(cached) == answer_set(unsharded)

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios(), st.sampled_from([1, 2, 4, 7]), st.integers(1, 5))
    def test_sharded_topk_identical(self, scenario, num_shards, k):
        session, query = open_session(scenario)
        corpus = session.shard(num_shards)
        unsharded = session.execute(query, k=k, use_cache=False)
        sharded = corpus.execute(query, k=k, use_cache=False)
        assert answer_set(sharded) == answer_set(unsharded)

    @settings(max_examples=10, deadline=None)
    @given(query_scenarios())
    def test_corpus_service_identical(self, scenario):
        session, query = open_session(scenario)
        corpus = session.shard(3)
        direct = session.execute(query, use_cache=False)
        with QueryService(corpus, max_workers=2) as service:
            submitted = service.submit(query).result(timeout=30)
            batched = service.execute_many([query, query])
        assert answer_set(submitted) == answer_set(direct)
        for result in batched:
            assert answer_set(result) == answer_set(direct)


class TestKernelBackendEquivalence:
    """The kernel backend must never change an answer — not even a bit.

    The compiled plan's results under every importable backend are compared
    through ``float.hex()`` serialisation, so a numpy kernel that changed the
    accumulation order of a probability sum (and hence its last ulp) would
    fail here.  On a numpy-less interpreter ``BACKENDS == ("python",)`` and
    these properties degenerate to self-comparison — the cross-backend pin
    then comes from the CI leg that installs numpy.
    """

    @settings(max_examples=30, deadline=None)
    @given(query_scenarios())
    def test_backends_bit_identical(self, scenario):
        reference = None
        for backend in BACKENDS:
            session, query = open_session(scenario, kernels=backend)
            assert session.kernels.name == backend
            got = canonical_answers(session.execute(query, use_cache=False))
            if reference is None:
                reference = got
            else:
                assert got == reference, f"backend {backend} diverges"

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios(), st.integers(1, 5), st.sampled_from([1, 3, 7]))
    def test_backends_bit_identical_topk_and_sharded(self, scenario, k, num_shards):
        reference_topk = None
        reference_sharded = None
        for backend in BACKENDS:
            session, query = open_session(scenario, kernels=backend)
            topk = canonical_answers(session.execute(query, k=k, use_cache=False))
            corpus = session.shard(num_shards)
            sharded = canonical_answers(corpus.execute(query, use_cache=False))
            if reference_topk is None:
                reference_topk, reference_sharded = topk, sharded
            else:
                assert topk == reference_topk, f"backend {backend} top-k diverges"
                assert sharded == reference_sharded, f"backend {backend} sharded diverges"


class TestBatchAndServiceEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(query_scenarios())
    def test_batch_equals_one_at_a_time(self, scenario):
        session, query = open_session(scenario)
        one_at_a_time = [
            session.execute(query, use_cache=False) for _ in range(3)
        ]
        sequential = session.query_batch([query, query, query], use_cache=False)
        pooled = session.query_batch([query, query, query], max_workers=3)
        compiled_batch = session.query_batch(
            [query, query, query], plan="compiled", use_cache=False
        )
        for single, batch_seq, batch_pool, batch_compiled in zip(
            one_at_a_time, sequential, pooled, compiled_batch
        ):
            assert (
                answer_set(single)
                == answer_set(batch_seq)
                == answer_set(batch_pool)
                == answer_set(batch_compiled)
            )

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios(), st.integers(1, 4))
    def test_service_equals_direct_execution(self, scenario, k):
        session, query = open_session(scenario)
        direct = session.execute(query, k=k, use_cache=False)
        basic = session.execute(query, k=k, plan="basic", use_cache=False)
        with QueryService(session, max_workers=2) as service:
            submitted = service.submit(query, k=k).result(timeout=30)
            batched = service.execute_many([query], k=k)[0]
            compiled = service.execute_many([query], k=k, plan="compiled")[0]
        assert (
            answer_set(direct)
            == answer_set(basic)
            == answer_set(submitted)
            == answer_set(batched)
            == answer_set(compiled)
        )


class TestCostBasedPlannerEquivalence:
    """The adaptive planner must never change an answer — not even a bit.

    After a ``calibrate()`` pass the cost model holds measured latencies for
    every in-process plan (and, when shard counts are calibrated, the
    scatter-gather route), so the subsequent un-forced execution takes
    whatever strategy the model picked.  Whatever it picks, the answers must
    serialize byte-identically (``float.hex()``) to every fixed plan's — per
    kernel backend, per shard count.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=15, deadline=None)
    @given(scenario=query_scenarios(), num_shards=st.sampled_from([1, 2, 4, 7]))
    def test_cost_routed_equals_every_fixed_plan(self, backend, scenario, num_shards):
        session, query = open_session(scenario, kernels=backend)
        fixed = {
            plan: canonical_answers(session.execute(query, plan=plan, use_cache=False))
            for plan in ("basic", "blocktree", "compiled")
        }
        assert fixed["basic"] == fixed["blocktree"] == fixed["compiled"]
        session.calibrate(query, shard_counts=(num_shards,))
        routed = canonical_answers(session.execute(query, use_cache=False))
        decision = session.plan_decision(session.prepare(query), allow_scatter=True)
        assert routed == fixed["compiled"], f"planner chose {decision.plan_name}"

    @settings(max_examples=10, deadline=None)
    @given(query_scenarios(), st.integers(1, 5), st.sampled_from([1, 2, 4, 7]))
    def test_cost_routed_topk_identical(self, scenario, k, num_shards):
        session, query = open_session(scenario)
        fixed = canonical_answers(session.execute(query, k=k, plan="compiled", use_cache=False))
        session.calibrate(query, k=k, shard_counts=(num_shards,))
        routed = canonical_answers(session.execute(query, k=k, use_cache=False))
        # Repeated scattered top-k replays seed the gather with the remembered
        # exact threshold — answers must stay byte-identical regardless.
        corpus = session.shard(num_shards)
        reseeded = canonical_answers(corpus.execute(query, k=k, use_cache=False))
        assert routed == fixed
        assert reseeded == fixed
