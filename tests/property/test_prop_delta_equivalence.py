"""Differential properties: delta-applied state ≡ rebuilt-from-scratch state.

The delta engine's core contract (ISSUE 5) is that ``apply_delta`` must be
*indistinguishable* from throwing the mapping set away and rebuilding it with
the edits already in place.  On hypothesis-generated scenarios with random
deltas (reweights, pair removals/additions, top-h replacements) this suite
pins:

* the incrementally patched ``CompiledMappingSet`` equals a fresh compile of
  the same set, column by column;
* every plan (``basic``, ``blocktree``, ``compiled``) returns identical
  answers on the delta session and on a from-scratch reference session;
* scatter-gather over shard counts {1, 2, 4, 7} stays byte-identical to the
  unsharded reference after the delta;
* a *warmed* session (result cache populated pre-delta) returns the same
  answers as the cold reference — the adversarial case for cache retention:
  if the retain check ever kept an entry it should have killed, this test
  catches the stale answer.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _scenarios import query_scenarios
from repro.engine import Dataspace, MappingDelta, apply_mapping_delta
from repro.engine.kernels import available_backends
from repro.mapping.mapping_set import MappingSet

#: Kernel backends importable in this process (see test_prop_plan_equivalence).
BACKENDS = available_backends()


def answer_set(result):
    return {(answer.mapping_id, answer.matches, answer.probability) for answer in result}


def random_delta(mapping_set, seed: int) -> MappingDelta:
    """A valid random delta over ``mapping_set``: reweights + structural edits."""
    rng = random.Random(seed)
    h = len(mapping_set)

    reweight = {}
    if h >= 2 and rng.random() < 0.8:
        ids = rng.sample(range(h), k=rng.randint(2, min(4, h)))
        for index, mapping_id in enumerate(ids):
            reweight[mapping_id] = mapping_set[ids[(index + 1) % len(ids)]].probability

    remove = []
    removed_from: set[int] = set()
    if rng.random() < 0.7:
        mapping_id = rng.randrange(h)
        pairs = sorted(mapping_set[mapping_id].correspondences)
        if pairs:
            remove.append((mapping_id, rng.choice(pairs)))
            removed_from.add(mapping_id)

    add = []
    if rng.random() < 0.7:
        candidates = []
        for correspondence in sorted(
            mapping_set.matching, key=lambda c: (c.source_id, c.target_id)
        ):
            for mapping in mapping_set:
                if mapping.mapping_id in removed_from:
                    continue
                if (
                    correspondence.key not in mapping.correspondences
                    and correspondence.source_id not in mapping.source_ids()
                    and correspondence.target_id not in mapping.target_ids()
                ):
                    candidates.append((mapping.mapping_id, correspondence.key))
        if candidates:
            add.append(rng.choice(candidates))

    replace = []
    if h >= 2 and rng.random() < 0.4:
        edited = removed_from | {mid for mid, _ in add}
        slots = [mid for mid in range(h) if mid not in edited]
        if slots:
            slot = rng.choice(slots)
            donor = mapping_set[rng.randrange(h)]
            replace.append((slot, donor.correspondences, donor.score))

    return MappingDelta.build(
        add=add, remove=remove, reweight=reweight, replace=replace
    )


def reference_session(delta_session: Dataspace, scenario) -> Dataspace:
    """A from-scratch session over the delta session's *current* mappings."""
    _, document, _, tau = scenario
    rebuilt = MappingSet(
        delta_session.mapping_set.matching,
        delta_session.mapping_set.mappings,
        normalize=False,
    )
    return Dataspace.from_mapping_set(rebuilt, document=document, tau=tau)


class TestDeltaEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=30, deadline=None)
    @given(scenario=query_scenarios(), seed=st.integers(0, 100_000))
    def test_patched_compiled_equals_fresh_compile(self, backend, scenario, seed):
        mapping_set, _, _, _ = scenario
        mapping_set.compile(backend)
        delta = random_delta(mapping_set, seed)
        patched, _ = apply_mapping_delta(mapping_set, delta)
        fresh = MappingSet(
            patched.matching, patched.mappings, normalize=False
        ).compile(backend)
        compiled = patched.compile(backend)
        assert compiled.kernels.name == fresh.kernels.name == backend
        assert compiled.probabilities == fresh.probabilities
        assert compiled._pair_masks == fresh._pair_masks
        assert compiled._covered_masks == fresh._covered_masks
        assert compiled._target_sources == fresh._target_sources

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=25, deadline=None)
    @given(scenario=query_scenarios(), seed=st.integers(0, 100_000))
    def test_all_plans_identical_after_delta(self, backend, scenario, seed):
        mapping_set, document, query, tau = scenario
        session = Dataspace.from_mapping_set(
            mapping_set, document=document, tau=tau, kernels=backend
        )
        session.apply_delta(random_delta(mapping_set, seed))
        reference = reference_session(session, scenario)
        expected = answer_set(reference.execute(query, use_cache=False))
        for plan in ("basic", "blocktree", "compiled"):
            got = session.execute(query, plan=plan, use_cache=False)
            assert answer_set(got) == expected, f"plan {plan} diverges after delta"

    @settings(max_examples=20, deadline=None)
    @given(query_scenarios(), st.integers(0, 100_000), st.sampled_from([1, 2, 4, 7]))
    def test_sharded_identical_after_delta(self, scenario, seed, num_shards):
        mapping_set, document, query, tau = scenario
        session = Dataspace.from_mapping_set(mapping_set, document=document, tau=tau)
        corpus = session.shard(num_shards)
        corpus.execute(query)  # warm shard state + partial caches pre-delta
        session.apply_delta(random_delta(mapping_set, seed))
        reference = reference_session(session, scenario)
        expected = answer_set(reference.execute(query, use_cache=False))
        assert answer_set(corpus.execute(query, use_cache=False)) == expected
        # The cached path (which may retain pre-delta partials) must agree too.
        assert answer_set(corpus.execute(query)) == expected

    @settings(max_examples=25, deadline=None)
    @given(query_scenarios(), st.integers(0, 100_000))
    def test_warm_cache_never_serves_stale_answers(self, scenario, seed):
        mapping_set, document, query, tau = scenario
        session = Dataspace.from_mapping_set(mapping_set, document=document, tau=tau)
        session.execute(query)  # populate the result cache pre-delta
        session.execute(query, k=2)
        session.apply_delta(random_delta(mapping_set, seed))
        reference = reference_session(session, scenario)
        assert answer_set(session.execute(query)) == answer_set(
            reference.execute(query, use_cache=False)
        )
        assert answer_set(session.execute(query, k=2)) == answer_set(
            reference.execute(query, k=2, use_cache=False)
        )

    @settings(max_examples=15, deadline=None)
    @given(query_scenarios(), st.integers(0, 100_000), st.integers(0, 100_000))
    def test_chained_deltas_equal_one_rebuild(self, scenario, seed_a, seed_b):
        mapping_set, document, query, tau = scenario
        session = Dataspace.from_mapping_set(mapping_set, document=document, tau=tau)
        session.execute(query)
        session.apply_delta(random_delta(mapping_set, seed_a))
        session.execute(query)
        session.apply_delta(random_delta(session.mapping_set, seed_b))
        reference = reference_session(session, scenario)
        assert answer_set(session.execute(query)) == answer_set(
            reference.execute(query, use_cache=False)
        )
