"""Property-based tests for query evaluation and schema round-trips.

The central property is the paper's correctness claim for Algorithm 4: on any
scenario, the block-tree PTQ evaluation returns exactly the same answers as
the basic per-mapping evaluation, for any block-tree configuration.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.document.document import XMLDocument
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree
from repro.query.topk import evaluate_topk_ptq
from repro.query.twig import AXIS_CHILD, AXIS_DESCENDANT, TwigNode, TwigQuery
from repro.schema.parser import parse_schema, schema_to_text
from repro.schema.schema import Schema


def _random_tree_schema(rng: random.Random, name: str, size: int, labels: list[str]) -> Schema:
    schema = Schema(name)
    root = schema.add_root(labels[0])
    elements = [root]
    for index in range(1, size):
        parent = rng.choice(elements)
        label = f"{rng.choice(labels)}{index}"
        elements.append(schema.add_child(parent, label, repeatable=rng.random() < 0.3))
    return schema.freeze()


@st.composite
def query_scenarios(draw):
    """A random matching, mapping set, conforming document and twig query."""
    seed = draw(st.integers(0, 100_000))
    rng = random.Random(seed)
    labels = ["Order", "Party", "Contact", "Name", "Line", "Qty", "Price", "City"]
    source = _random_tree_schema(rng, "S", draw(st.integers(4, 12)), labels)
    target = _random_tree_schema(rng, "T", draw(st.integers(3, 8)), labels)

    matching = SchemaMatching(source, target, name=f"q{seed}")
    source_ids = list(range(len(source)))
    for target_id in range(len(target)):
        for source_id in rng.sample(source_ids, k=min(len(source_ids), rng.randint(1, 3))):
            if matching.get(source_id, target_id) is None:
                matching.add_pair(source_id, target_id, round(rng.uniform(0.3, 1.0), 3))

    mappings = []
    for mapping_id in range(draw(st.integers(2, 6))):
        used: set[int] = set()
        keys = set()
        for target_id in range(len(target)):
            options = [c for c in matching.for_target(target_id) if c.source_id not in used]
            if options and rng.random() < 0.85:
                chosen = rng.choice(options)
                keys.add(chosen.key)
                used.add(chosen.source_id)
        mappings.append(Mapping(mapping_id, frozenset(keys), score=round(rng.uniform(0.5, 2.0), 3)))
    mapping_set = MappingSet(matching, mappings)

    # A conforming document: instantiate everything once, then add a few
    # extra instances of repeatable elements.
    document = XMLDocument(source, "random.xml")

    def instantiate(element, parent_node):
        node = document.add_root(element.element_id) if parent_node is None else document.add_child(
            parent_node, element.element_id
        )
        if element.is_leaf:
            node.value = rng.choice(["Cathy", "Bob", "Alice", "42"])
        for child in element.children:
            instantiate(child, node)
        return node

    instantiate(source.root, None)
    repeatable = [e for e in source.iter_preorder() if e.repeatable and e.parent is not None]
    for _ in range(rng.randint(0, 4)):
        if not repeatable:
            break
        element = rng.choice(repeatable)
        parents = document.nodes_of_element(element.parent.element_id)
        instantiate(element, rng.choice(parents))
    document.finalize()

    # A random query: a downward path in the target schema plus optional branches.
    target_elements = list(target.iter_preorder())
    anchor = rng.choice(target_elements)
    path = [anchor]
    while path[-1].children and rng.random() < 0.7:
        path.append(rng.choice(path[-1].children))
    root_axis = AXIS_CHILD if anchor is target.root else AXIS_DESCENDANT
    query_root = TwigNode(path[0].label, axis=root_axis)
    current = query_root
    for element in path[1:]:
        axis = AXIS_CHILD if rng.random() < 0.7 else AXIS_DESCENDANT
        current = current.add_child(TwigNode(element.label, axis=axis))
    # optional predicate branch from the query root
    if anchor.children and rng.random() < 0.5:
        branch = rng.choice(anchor.children)
        query_root.add_child(TwigNode(branch.label, axis=AXIS_CHILD, on_main_path=False))
    query = TwigQuery(query_root, text="random")

    tau = draw(st.sampled_from([0.1, 0.3, 0.6]))
    return mapping_set, document, query, tau


def _answer_set(result):
    return {(answer.mapping_id, answer.matches) for answer in result}


class TestPTQEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(query_scenarios())
    def test_blocktree_equals_basic(self, scenario):
        mapping_set, document, query, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        basic = evaluate_ptq_basic(query, mapping_set, document)
        block = evaluate_ptq_blocktree(query, mapping_set, document, tree)
        assert _answer_set(basic) == _answer_set(block)

    @settings(max_examples=25, deadline=None)
    @given(query_scenarios())
    def test_fewer_blocks_never_change_answers(self, scenario):
        mapping_set, document, query, _ = scenario
        rich = build_block_tree(mapping_set, BlockTreeConfig(tau=0.05))
        poor = build_block_tree(mapping_set, BlockTreeConfig(tau=0.95, max_blocks=0))
        rich_result = evaluate_ptq_blocktree(query, mapping_set, document, rich)
        poor_result = evaluate_ptq_blocktree(query, mapping_set, document, poor)
        assert _answer_set(rich_result) == _answer_set(poor_result)

    @settings(max_examples=25, deadline=None)
    @given(query_scenarios(), st.integers(1, 6))
    def test_topk_is_prefix_of_full_result(self, scenario, k):
        mapping_set, document, query, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        full = evaluate_ptq_basic(query, mapping_set, document)
        topk = evaluate_topk_ptq(query, mapping_set, document, k=k, block_tree=tree)
        assert len(topk) <= k
        full_by_id = {answer.mapping_id: answer.matches for answer in full}
        top_probabilities = sorted((a.probability for a in full), reverse=True)[: len(topk)]
        for answer in topk:
            assert full_by_id[answer.mapping_id] == answer.matches
        if len(full) > len(topk):
            assert min(top_probabilities) >= max(
                a.probability for a in full if a.mapping_id not in {x.mapping_id for x in topk}
            ) - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(query_scenarios())
    def test_probabilities_bounded(self, scenario):
        mapping_set, document, query, _ = scenario
        result = evaluate_ptq_basic(query, mapping_set, document)
        assert 0.0 <= result.total_probability() <= 1.0 + 1e-9


class TestSchemaRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 15))
    def test_text_round_trip(self, seed, size):
        rng = random.Random(seed)
        labels = ["Order", "Party", "Contact", "Name", "Line"]
        schema = _random_tree_schema(rng, "RT", size, labels)
        text = schema_to_text(schema)
        parsed = parse_schema(text, name="RT")
        assert [e.path for e in parsed.iter_preorder()] == [
            e.path for e in schema.iter_preorder()
        ]
        assert [e.repeatable for e in parsed.iter_preorder()] == [
            e.repeatable for e in schema.iter_preorder()
        ]
