"""Property-based tests for query evaluation and schema round-trips.

The central property is the paper's correctness claim for Algorithm 4: on any
scenario, the block-tree PTQ evaluation returns exactly the same answers as
the basic per-mapping evaluation, for any block-tree configuration.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from _scenarios import query_scenarios, random_tree_schema
from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree
from repro.query.topk import evaluate_topk_ptq
from repro.schema.parser import parse_schema, schema_to_text


def _answer_set(result):
    return {(answer.mapping_id, answer.matches) for answer in result}


class TestPTQEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(query_scenarios())
    def test_blocktree_equals_basic(self, scenario):
        mapping_set, document, query, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        basic = evaluate_ptq_basic(query, mapping_set, document)
        block = evaluate_ptq_blocktree(query, mapping_set, document, tree)
        assert _answer_set(basic) == _answer_set(block)

    @settings(max_examples=25, deadline=None)
    @given(query_scenarios())
    def test_fewer_blocks_never_change_answers(self, scenario):
        mapping_set, document, query, _ = scenario
        rich = build_block_tree(mapping_set, BlockTreeConfig(tau=0.05))
        poor = build_block_tree(mapping_set, BlockTreeConfig(tau=0.95, max_blocks=0))
        rich_result = evaluate_ptq_blocktree(query, mapping_set, document, rich)
        poor_result = evaluate_ptq_blocktree(query, mapping_set, document, poor)
        assert _answer_set(rich_result) == _answer_set(poor_result)

    @settings(max_examples=25, deadline=None)
    @given(query_scenarios(), st.integers(1, 6))
    def test_topk_is_prefix_of_full_result(self, scenario, k):
        mapping_set, document, query, tau = scenario
        tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
        full = evaluate_ptq_basic(query, mapping_set, document)
        topk = evaluate_topk_ptq(query, mapping_set, document, k=k, block_tree=tree)
        assert len(topk) <= k
        full_by_id = {answer.mapping_id: answer.matches for answer in full}
        top_probabilities = sorted((a.probability for a in full), reverse=True)[: len(topk)]
        for answer in topk:
            assert full_by_id[answer.mapping_id] == answer.matches
        if len(full) > len(topk):
            assert min(top_probabilities) >= max(
                a.probability for a in full if a.mapping_id not in {x.mapping_id for x in topk}
            ) - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(query_scenarios())
    def test_probabilities_bounded(self, scenario):
        mapping_set, document, query, _ = scenario
        result = evaluate_ptq_basic(query, mapping_set, document)
        assert 0.0 <= result.total_probability() <= 1.0 + 1e-9


class TestSchemaRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 15))
    def test_text_round_trip(self, seed, size):
        rng = random.Random(seed)
        labels = ["Order", "Party", "Contact", "Name", "Line"]
        schema = random_tree_schema(rng, "RT", size, labels)
        text = schema_to_text(schema)
        parsed = parse_schema(text, name="RT")
        assert [e.path for e in parsed.iter_preorder()] == [
            e.path for e in schema.iter_preorder()
        ]
        assert [e.repeatable for e in parsed.iter_preorder()] == [
            e.repeatable for e in schema.iter_preorder()
        ]
