"""Property-based tests for the assignment substrate and mapping ranking.

The key invariants:

* the pure-Python Hungarian solver finds the same optimum as brute force (and
  as SciPy when available);
* Murty's ranking enumerates exactly the mappings that brute-force
  enumeration produces, in non-increasing score order, without duplicates;
* the partition-based ranking produces the same score sequence as plain
  Murty (the paper's correctness claim for Algorithm 5).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.assignment import available_backends, solve_max_weight_matching
from repro.mapping.bipartite import BipartiteGraph
from repro.mapping.murty import rank_graph_murty
from repro.mapping.partition import merge_rankings


@st.composite
def small_bipartites(draw, max_side=4):
    """Random sparse bipartite graphs with up to ``max_side`` nodes per side."""
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    weights = {}
    for i in range(rows):
        for j in range(cols):
            if draw(st.booleans()):
                weights[(i, j)] = round(draw(st.floats(0.05, 1.0)), 3)
    return BipartiteGraph(range(rows), range(cols), weights)


def brute_force_best(graph: BipartiteGraph):
    best_score, best_edges = 0.0, frozenset()
    edges = sorted(graph.weights)
    for size in range(len(edges) + 1):
        for subset in itertools.combinations(edges, size):
            sources = [s for s, _ in subset]
            targets = [t for _, t in subset]
            if len(set(sources)) == len(sources) and len(set(targets)) == len(targets):
                score = sum(graph.weights[e] for e in subset)
                if score > best_score:
                    best_score, best_edges = score, frozenset(subset)
    return best_score, best_edges


def brute_force_ranking(graph: BipartiteGraph):
    edges = sorted(graph.weights)
    mappings = []
    for size in range(len(edges) + 1):
        for subset in itertools.combinations(edges, size):
            sources = [s for s, _ in subset]
            targets = [t for _, t in subset]
            if len(set(sources)) == len(sources) and len(set(targets)) == len(targets):
                mappings.append((sum(graph.weights[e] for e in subset), frozenset(subset)))
    mappings.sort(key=lambda item: -item[0])
    return mappings


class TestMaxWeightMatchingProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_bipartites())
    def test_python_backend_is_optimal(self, graph):
        expected_score, _ = brute_force_best(graph)
        score, edges = solve_max_weight_matching(graph, backend="python")
        assert abs(score - expected_score) < 1e-9
        assert score == sum(graph.weights[e] for e in edges)

    @settings(max_examples=60, deadline=None)
    @given(small_bipartites())
    def test_backends_agree(self, graph):
        python_score, _ = solve_max_weight_matching(graph, backend="python")
        if "scipy" in available_backends():
            scipy_score, _ = solve_max_weight_matching(graph, backend="scipy")
            assert abs(python_score - scipy_score) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(small_bipartites())
    def test_result_is_valid_matching(self, graph):
        _, edges = solve_max_weight_matching(graph, backend="python")
        sources = [s for s, _ in edges]
        targets = [t for _, t in edges]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)
        assert set(edges) <= set(graph.weights)


class TestMurtyProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_bipartites(max_side=3), st.integers(1, 12))
    def test_matches_brute_force_ranking(self, graph, h):
        expected = brute_force_ranking(graph)[:h]
        actual = rank_graph_murty(graph, h, backend="python")
        assert len(actual) == min(h, len(expected))
        assert [round(s, 6) for s, _ in actual] == [round(s, 6) for s, _ in expected]

    @settings(max_examples=40, deadline=None)
    @given(small_bipartites(max_side=3), st.integers(1, 12))
    def test_no_duplicates_and_sorted(self, graph, h):
        ranking = rank_graph_murty(graph, h, backend="python")
        mappings = [edges for _, edges in ranking]
        scores = [score for score, _ in ranking]
        assert len(mappings) == len(set(mappings))
        assert scores == sorted(scores, reverse=True)


class TestMergeProperties:
    ranked_lists = st.lists(
        st.floats(0.0, 5.0).map(lambda x: round(x, 3)), min_size=1, max_size=6
    ).map(
        lambda scores: [
            (score, frozenset({(index, 1000 + index)}))
            for index, score in enumerate(sorted(scores, reverse=True))
        ]
    )

    @settings(max_examples=60, deadline=None)
    @given(ranked_lists, ranked_lists, st.integers(1, 10))
    def test_lazy_equals_exhaustive(self, first, second, h):
        # Make the two lists use disjoint edge identities so unions are valid.
        second = [
            (score, frozenset({(source + 100, target + 100) for source, target in edges}))
            for score, edges in second
        ]
        lazy = merge_rankings(first, second, h, strategy="lazy")
        exhaustive = merge_rankings(first, second, h, strategy="exhaustive")
        assert [round(s, 6) for s, _ in lazy] == [round(s, 6) for s, _ in exhaustive]

    @settings(max_examples=40, deadline=None)
    @given(ranked_lists, ranked_lists, st.integers(1, 10))
    def test_merge_scores_sorted(self, first, second, h):
        second = [
            (score, frozenset({(source + 100, target + 100) for source, target in edges}))
            for score, edges in second
        ]
        merged = merge_rankings(first, second, h, strategy="lazy")
        scores = [score for score, _ in merged]
        assert scores == sorted(scores, reverse=True)
        assert len(merged) <= h
