"""The paper's running example: who is the invoice party's contact?

Reproduces the introduction of the paper (Figures 1-3): two purchase-order
schemas whose matcher output is ambiguous about which ``ContactName`` in the
source corresponds to ``CONTACT_NAME`` of the invoice party in the target.
Instead of picking one correspondence, the library keeps a set of possible
mappings with probabilities and answers the query ``//INVOICE_PARTY//
CONTACT_NAME`` with a *distribution* over contact names — the
"{(Cathy, .3), (Bob, .3), (Alice, .2)}"-style answer from the paper.

The hand-built mapping set is wrapped in an engine session
(:meth:`repro.Dataspace.from_mapping_set`), which owns the block tree and
evaluates the queries through the fluent builder.

Run with:  python examples/uncertain_contact_names.py
"""

from __future__ import annotations

import repro
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet

SOURCE_TEXT = """
Order
  BillToParty
    OrderContact
      ContactName
    ReceivingContact
      ContactName
    OtherContact
      ContactName
  SellerParty
"""

TARGET_TEXT = """
ORDER
  SUPPLIER_PARTY
    CONTACT_NAME
  INVOICE_PARTY
    CONTACT_NAME
"""


def build_scenario():
    """Build the Figure 1-3 scenario: schemas, matching, mappings, document."""
    source = repro.parse_schema(SOURCE_TEXT, name="xcbl-like")
    target = repro.parse_schema(TARGET_TEXT, name="opentrans-like")

    def s(path):
        return source.element_by_path(path).element_id

    def t(path):
        return target.element_by_path(path).element_id

    matching = repro.SchemaMatching(source, target, name="figure1")
    scored_pairs = [
        ("Order", "ORDER", 0.95),
        ("Order.BillToParty", "ORDER.INVOICE_PARTY", 0.84),
        ("Order.SellerParty", "ORDER.INVOICE_PARTY", 0.60),
        ("Order.BillToParty", "ORDER.SUPPLIER_PARTY", 0.55),
        ("Order.BillToParty.OrderContact.ContactName", "ORDER.INVOICE_PARTY.CONTACT_NAME", 0.84),
        ("Order.BillToParty.ReceivingContact.ContactName", "ORDER.INVOICE_PARTY.CONTACT_NAME", 0.83),
        ("Order.BillToParty.OtherContact.ContactName", "ORDER.INVOICE_PARTY.CONTACT_NAME", 0.75),
        ("Order.BillToParty.OrderContact.ContactName", "ORDER.SUPPLIER_PARTY.CONTACT_NAME", 0.62),
        ("Order.BillToParty.ReceivingContact.ContactName", "ORDER.SUPPLIER_PARTY.CONTACT_NAME", 0.61),
        ("Order.BillToParty.OtherContact.ContactName", "ORDER.SUPPLIER_PARTY.CONTACT_NAME", 0.60),
    ]
    for source_path, target_path, score in scored_pairs:
        matching.add_pair(s(source_path), t(target_path), score)

    # The five possible mappings of Figure 3, scored so their normalised
    # probabilities echo the introduction's 0.3 / 0.3 / 0.2 example.
    def mapping(mapping_id, pairs, score):
        return Mapping(
            mapping_id,
            frozenset((s(a), t(b)) for a, b in pairs),
            score=score,
        )

    bcn = "Order.BillToParty.OrderContact.ContactName"
    rcn = "Order.BillToParty.ReceivingContact.ContactName"
    ocn = "Order.BillToParty.OtherContact.ContactName"
    icn = "ORDER.INVOICE_PARTY.CONTACT_NAME"
    scn = "ORDER.SUPPLIER_PARTY.CONTACT_NAME"
    ip = "ORDER.INVOICE_PARTY"
    sp = "ORDER.SUPPLIER_PARTY"

    mappings = MappingSet(matching, [
        mapping(0, [("Order", "ORDER"), ("Order.BillToParty", ip), (bcn, icn), (rcn, scn)], 3.0),
        mapping(1, [("Order", "ORDER"), ("Order.BillToParty", ip), (bcn, icn), (ocn, scn)], 3.0),
        mapping(2, [("Order", "ORDER"), ("Order.SellerParty", ip), (rcn, icn), (ocn, scn),
                    ("Order.BillToParty", sp)], 2.0),
        mapping(3, [("Order", "ORDER"), ("Order.BillToParty", ip), (rcn, icn), (bcn, scn)], 1.5),
        mapping(4, [("Order", "ORDER"), ("Order.BillToParty", ip), (ocn, icn), (bcn, scn)], 1.5),
    ])

    # The Figure 2 source document.
    document = repro.XMLDocument(source, name="Order.xml")
    order = document.add_root(s("Order"))
    bill_to = document.add_child(order, s("Order.BillToParty"))
    order_contact = document.add_child(bill_to, s("Order.BillToParty.OrderContact"))
    document.add_child(order_contact, s(bcn), value="Cathy")
    receiving = document.add_child(bill_to, s("Order.BillToParty.ReceivingContact"))
    document.add_child(receiving, s(rcn), value="Bob")
    other = document.add_child(bill_to, s("Order.BillToParty.OtherContact"))
    document.add_child(other, s(ocn), value="Alice")
    document.add_child(order, s("Order.SellerParty"))
    document.finalize()

    return source, target, matching, mappings, document


def main() -> None:
    source, target, matching, mappings, document = build_scenario()
    ds = repro.Dataspace.from_mapping_set(
        mappings, document=document, tau=0.4, name="figure1"
    )

    print("possible mappings (Figure 3):")
    for mapping in ds.mapping_set:
        pairs = ", ".join(
            f"{source.get(a).label}~{target.get(b).label}"
            for a, b in sorted(mapping.correspondences)
        )
        print(f"  m{mapping.mapping_id + 1}: p={mapping.probability:.2f}  {{{pairs}}}")

    block_tree = ds.block_tree
    print(f"\nblock tree (tau=0.4): {block_tree.num_blocks} c-blocks")
    for block in block_tree.iter_blocks():
        anchor = target.get(block.anchor_id)
        pairs = ", ".join(
            f"{source.get(a).label}~{target.get(b).label}"
            for a, b in sorted(block.correspondences)
        )
        shared = ", ".join(f"m{mapping_id + 1}" for mapping_id in sorted(block.mapping_ids))
        print(f"  anchor {anchor.label:<15} C = {{{pairs}}}  shared by {shared}")

    prepared = ds.prepare("//INVOICE_PARTY//CONTACT_NAME")
    result = prepared.execute()
    print(f"\nPTQ {prepared.text} over Order.xml:")
    for value, probability in sorted(result.value_distribution().items(), key=lambda kv: -kv[1]):
        print(f"  ({value!r}, {probability:.2f})")

    top2 = ds.query("//INVOICE_PARTY//CONTACT_NAME").top_k(2).execute()
    print("\ntop-2 PTQ answers (highest-probability mappings only):")
    output_id = prepared.query.output_node.node_id
    for answer in top2:
        values = {
            document.get(node_id).value
            for match in answer.matches
            for qid, node_id in match
            if qid == output_id
        }
        print(f"  mapping m{answer.mapping_id + 1}  p={answer.probability:.2f}  values={sorted(values)}")


if __name__ == "__main__":
    main()
