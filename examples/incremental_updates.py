"""Incremental mapping evolution: apply_delta under concurrent queries.

The dataspace setting the paper targets is never static — uncertain mappings
evolve as evidence accrues.  Before the delta engine, any probability or
correspondence change meant a cold restart: rebuild the mapping set, recompile
the bitsets, drop every cached result.  This example shows the delta path:

1. **Deltas instead of rebuilds** — ``ds.apply_delta(MappingDelta.build(...))``
   patches the mapping set in place (structure-sharing), recompiles only the
   touched bitmask columns, and bumps the fine-grained ``delta_epoch`` —
   the generation (and therefore the bulk of the cache) survives.
2. **Surviving cache entries** — results whose relevant mappings and target
   elements the delta provably did not touch are *retained* across the epoch
   (one bitwise AND decides); ``explain()`` shows ``cache: retained``.
3. **Concurrent writers and readers** — deltas commit under the session's
   write lock while a pool of reader threads keeps querying; snapshots make
   every answer internally consistent, and the service's single-flight keys
   include the epoch so post-delta requests never join pre-delta flights.

Run with:  python examples/incremental_updates.py
"""

from __future__ import annotations

import threading

import repro
from repro.engine import MappingDelta
from repro.service import QueryService

#: Queries kept warm while the mapping set evolves underneath them.
QUERIES = ("Q1", "Q2", "Q7", "ORDER/SUPPLIER_PARTY")


def rotation_delta(mapping_set, ids):
    """A mass-preserving probability rotation among the given mapping ids."""
    return MappingDelta.build(
        reweight={
            ids[i]: mapping_set[ids[(i + 1) % len(ids)]].probability
            for i in range(len(ids))
        }
    )


def main() -> None:
    ds = repro.Dataspace.from_dataset("D7", h=50)

    # 1. Warm the cache, then evolve the low-probability tail of the top-h.
    for query in QUERIES:
        ds.execute(query)
    delta = rotation_delta(ds.mapping_set, ids=[45, 46, 47, 48, 49])
    report = ds.apply_delta(delta)
    print(report.format())
    print()

    # 2. Which cached answers survived the epoch boundary?
    for query in QUERIES:
        explain = ds.explain(query)
        print(f"  {query:<24} cache={explain.cache}")
    stats = ds.result_cache.stats()
    print(f"result cache: {stats.retained} retained, "
          f"{stats.hits} hits, {stats.misses} misses\n")

    # 3. Keep applying deltas while reader threads hammer the service.
    stop = threading.Event()
    answered = []

    with QueryService(ds, max_workers=4) as service:
        def reader() -> None:
            while not stop.is_set():
                for query in QUERIES:
                    answered.append(len(service.execute(query)))

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for round_index in range(5):
            service.apply_delta(
                rotation_delta(ds.mapping_set, ids=[40 + round_index, 45, 49])
            )
        stop.set()
        for thread in threads:
            thread.join()
        service_stats = service.stats()

    print(f"after 5 concurrent deltas: epoch={ds.delta_epoch}, "
          f"generation={ds.generation}")
    print(f"served {service_stats['completed']} requests, "
          f"errors={service_stats['errors']}")
    final = ds.result_cache.stats()
    print(f"result cache: {final.retained} retained across all epochs, "
          f"hit rate {final.hit_rate:.2f}")

    # Sanity: the evolved session answers exactly like a from-scratch rebuild.
    rebuilt = repro.MappingSet(
        ds.mapping_set.matching, ds.mapping_set.mappings, normalize=False
    )
    reference = repro.Dataspace.from_mapping_set(rebuilt, document=ds.document)
    from repro.workloads import load_query

    query = load_query("Q7")
    same = {
        (a.mapping_id, a.probability, a.matches) for a in ds.execute(query)
    } == {
        (a.mapping_id, a.probability, a.matches)
        for a in reference.execute(query)
    }
    print(f"delta-applied state identical to full rebuild: {same}")


if __name__ == "__main__":
    main()
