"""Service walkthrough: concurrent queries, result caching, workload replay.

A :class:`repro.Dataspace` session is thread-safe, and the service layer
turns it into a serving component.  This example shows the three pieces:

1. **QueryService** — submit queries over a thread pool and collect futures;
   identical in-flight requests are de-duplicated onto one evaluation
   (*single-flight*), and ``execute_many`` batches share their
   resolve/filter prefix and evaluate concurrently.
2. **ResultCache** — answers are memoized under a key that includes the
   session's mapping-set generation, so ``configure()`` never lets a stale
   answer escape; ``explain()`` and ``stats()`` show the hits.
3. **Workload replay** — mix several datasets into one operation stream and
   measure throughput and p50/p95/p99 latency at a chosen concurrency.

Run with:  python examples/service_throughput.py
"""

from __future__ import annotations

import repro
from repro.service import QueryService, build_workload, replay_workload


def main() -> None:
    # 1. A session on the paper's query dataset, served by a thread pool.
    ds = repro.Dataspace.from_dataset("D7", h=50)
    with QueryService(ds, max_workers=8) as service:
        futures = service.submit_many(["Q1", "Q2", "Q7", "Q7"], k=10)
        for query, future in zip(["Q1", "Q2", "Q7", "Q7"], futures):
            result = future.result()
            print(f"{query}: {len(result)} answers "
                  f"({len(result.non_empty())} non-empty)")

        # 2. Repeat the batch: every answer now comes from the result cache.
        service.execute_many(["Q1", "Q2", "Q7"], k=10)
        stats = service.stats()
        cache = stats["result_cache"]
        print(f"\nservice: {stats['submitted']} submitted, "
              f"{stats['deduped']} de-duplicated in flight")
        print(f"cache:   hits={cache['hits']} misses={cache['misses']} "
              f"hit_rate={cache['hit_rate']:.0%}")

        # explain() reports how the cache participated in one execution.
        print("\nexplain (cached run):")
        print(ds.query("Q7").top_k(10).explain().format())

    # Reconfiguring bumps the generation: old entries become unreachable,
    # fresh executions recompute — no stale answers, no manual flushing.
    ds.configure(h=25)
    print(f"\nafter configure(h=25): generation={ds.generation}, "
          f"cached entries={len(ds.result_cache)} (stale ones unreachable)")

    # 3. Replay a mixed three-dataset workload at concurrency 8.
    ops = build_workload(["D1", "D6", "D7"], queries_per_dataset=4, repeats=3)
    report = replay_workload(ops, concurrency=8, h=25, warm=True)
    print("\nmixed D1/D6/D7 replay (warm cache):")
    print(report.format())


if __name__ == "__main__":
    main()
