"""Quickstart: open a dataspace session over two schemas and query it.

The engine facade (:class:`repro.Dataspace`) walks the library's whole
pipeline behind one object.  This example opens a session on a small pair of
schemas from the built-in e-commerce corpus; the session

1. runs the COMA++-like matcher on first use (``ds.matching``);
2. derives the top-h possible mappings with probabilities (``ds.mapping_set``);
3. builds the block tree, the compact representation of those mappings
   (``ds.block_tree``);
4. answers probabilistic twig queries through the fluent builder —
   ``ds.query("...").top_k(k).execute()`` — choosing the evaluation plan
   itself (``explain()`` shows which one ran and why).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. Schemas: CIDX purchase order (source) and the Excel-style order (target).
    source = repro.load_corpus_schema("cidx")
    target = repro.load_corpus_schema("excel")
    document = repro.generate_document(source, target_nodes=200, seed=7)
    ds = repro.Dataspace(source, target, h=20, document=document)
    print(f"session: {ds.name}")
    print(f"source schema: {source.name} ({len(source)} elements)")
    print(f"target schema: {target.name} ({len(target)} elements)")

    # 2. Schema matching (built lazily, then cached on the session).
    matching = ds.matching
    print(f"\nmatching capacity: {matching.capacity} correspondences")
    for correspondence in list(matching)[:5]:
        source_path = source.get(correspondence.source_id).path
        target_path = target.get(correspondence.target_id).path
        print(f"  {source_path}  ~  {target_path}   (score {correspondence.score:.2f})")

    # 3. Possible mappings with probabilities (the paper's model of uncertainty).
    mappings = ds.mapping_set
    print(f"\ntop-{len(mappings)} possible mappings; o-ratio = {mappings.o_ratio():.2f}")
    for mapping in list(mappings)[:3]:
        print(f"  mapping {mapping.mapping_id}: {len(mapping)} correspondences, "
              f"p = {mapping.probability:.3f}")

    # 4. The block tree: a compact representation of the mapping set.
    block_tree = ds.block_tree
    print(f"\nblock tree: {block_tree.num_blocks} c-blocks, "
          f"compression ratio {block_tree.compression_ratio():.1%}")

    # 5. A probabilistic twig query over the target schema, answered on a
    #    document that conforms to the source schema.  The engine resolves,
    #    filters and evaluates — and picks the plan.
    result = ds.query("Purchase_Order/Buyer/Contact/E_Mail").execute()
    print(f"\nquery: {result.query.text}")
    print(f"answers from {len(result)} mappings "
          f"(total probability {result.total_probability():.2f})")
    for value, probability in sorted(result.value_distribution().items(), key=lambda kv: -kv[1]):
        print(f"  {value!r} appears in the answer with probability {probability:.3f}")

    # 6. explain() shows how the engine evaluated the query.
    print("\nexplain:")
    print(ds.query("Purchase_Order/Buyer/Contact/E_Mail").explain().format())


if __name__ == "__main__":
    main()
