"""Quickstart: match two schemas, derive possible mappings, query under uncertainty.

This walks the library's whole pipeline on a small pair of schemas from the
built-in e-commerce corpus:

1. load a source and a target schema;
2. run the COMA++-like matcher to get scored correspondences;
3. derive the top-h possible mappings (with probabilities) using the paper's
   partition-based generator;
4. build the block tree, the compact representation of those mappings;
5. pose a probabilistic twig query against the target schema and evaluate it
   over a document that conforms to the source schema.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. Schemas: CIDX purchase order (source) and the Excel-style order (target).
    source = repro.load_corpus_schema("cidx")
    target = repro.load_corpus_schema("excel")
    print(f"source schema: {source.name} ({len(source)} elements)")
    print(f"target schema: {target.name} ({len(target)} elements)")

    # 2. Schema matching (a set of scored correspondences).
    matcher = repro.SchemaMatcher()
    matching = matcher.match(source, target, name="quickstart")
    print(f"\nmatching capacity: {matching.capacity} correspondences")
    for correspondence in list(matching)[:5]:
        source_path = source.get(correspondence.source_id).path
        target_path = target.get(correspondence.target_id).path
        print(f"  {source_path}  ~  {target_path}   (score {correspondence.score:.2f})")

    # 3. Possible mappings with probabilities (the paper's model of uncertainty).
    mappings = repro.generate_top_h_mappings(matching, h=20)
    print(f"\ntop-{len(mappings)} possible mappings; o-ratio = {mappings.o_ratio():.2f}")
    for mapping in list(mappings)[:3]:
        print(f"  mapping {mapping.mapping_id}: {len(mapping)} correspondences, "
              f"p = {mapping.probability:.3f}")

    # 4. The block tree: a compact representation of the mapping set.
    block_tree = repro.build_block_tree(mappings)
    print(f"\nblock tree: {block_tree.num_blocks} c-blocks, "
          f"compression ratio {block_tree.compression_ratio():.1%}")

    # 5. A probabilistic twig query over the target schema, answered on a
    #    document that conforms to the source schema.
    document = repro.generate_document(source, target_nodes=200, seed=7)
    query = repro.parse_twig("Purchase_Order/Buyer/Contact/E_Mail")
    result = repro.evaluate_ptq_blocktree(query, mappings, document, block_tree)

    print(f"\nquery: {query.text}")
    print(f"answers from {len(result)} mappings "
          f"(total probability {result.total_probability():.2f})")
    for value, probability in sorted(result.value_distribution().items(), key=lambda kv: -kv[1]):
        print(f"  {value!r} appears in the answer with probability {probability:.3f}")


if __name__ == "__main__":
    main()
