"""Dataspace-style mapping generation: partitioning vs plain Murty ranking.

Systems such as Dataspace or GoogleBase (Section V of the paper) maintain
mappings between many user-defined schemas and must derive top-h possible
mappings for each of them quickly.  This example opens one engine session per
Table II dataset, derives the mapping set with the plain Murty baseline, then
*reconfigures the session* to the paper's divide-and-conquer (partition)
generator — demonstrating the engine's cache invalidation: changing the
generation method drops the mapping set and block tree but keeps the matching.
It also shows how the schema matchings decompose into many small partitions —
the sparsity that makes the approach effective.

Run with:  python examples/dataspace_top_h.py  [h]
"""

from __future__ import annotations

import sys
import time

import repro
from repro.mapping.partition import partition_matching


def timed(func, *args, **kwargs):
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - started, result


def main(h: int = 25) -> None:
    print(f"deriving the top-{h} possible mappings for every Table II matching\n")
    print(f"{'dataset':<8} {'capacity':>9} {'partitions':>11} {'largest':>8} "
          f"{'murty':>9} {'partition':>10} {'speedup':>8}")

    for dataset_id in repro.DATASET_IDS:
        ds = repro.Dataspace.from_dataset(dataset_id, h=h, method="murty")
        matching = ds.matching
        partitions = partition_matching(matching)
        largest = max(partition.size for partition in partitions)

        murty_time, murty_set = timed(lambda: ds.mapping_set)
        # Reconfiguring the method invalidates the mapping set (and block
        # tree) but reuses the cached matching.
        ds.configure(method="partition")
        partition_time, partition_set = timed(lambda: ds.mapping_set)
        assert murty_set is not partition_set, "reconfigure must invalidate the mapping set"
        # Both generators must agree on the mapping scores.
        assert [round(m.score, 6) for m in murty_set] == [
            round(m.score, 6) for m in partition_set
        ]
        speedup = murty_time / partition_time if partition_time else float("inf")
        print(f"{dataset_id:<8} {matching.capacity:>9} {len(partitions):>11} {largest:>8} "
              f"{murty_time:>8.2f}s {partition_time:>9.2f}s {speedup:>7.1f}x")

    print("\nthe partition-based generator wins on every dataset because XML schema "
          "matchings are sparse:\nmost partitions contain only a handful of elements, so "
          "each Murty sub-problem is tiny.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 25)
