"""Sharded corpus walkthrough: scatter-gather queries over partitioned documents.

The corpus engine (:mod:`repro.corpus`) scales a session past "one document
per query": the document is partitioned into subtree shards (the spine —
ancestors of the cuts — is replicated into every shard), each shard compiles
its own bitset view of the mapping set, and queries are answered
scatter-gather with an exact merge.  This example shows the three pieces:

1. **Subtree sharding** — ``ds.shard(4)`` answers byte-identically to the
   unsharded engine; ``explain()`` shows fan-out, element-presence pruning
   (shards that cannot contain a candidate are skipped wholesale) and the
   spine pass that keeps branchy root-anchored queries exact.
2. **Serving** — ``QueryService(corpus)`` routes batches across shards and
   caches merged results under corpus-scoped keys.
3. **Multi-dataset top-k** — ``ShardedCorpus.from_datasets`` answers a
   global top-k across datasets, skipping whole datasets whose probability
   upper bound cannot reach the current k-th best.

Run with:  python examples/sharded_corpus.py
"""

from __future__ import annotations

import repro
from repro.service import QueryService


def main() -> None:
    # 1. Subtree sharding of the paper's query dataset.
    ds = repro.Dataspace.from_dataset("D7", h=50)
    corpus = ds.shard(4)

    for query in ("Q2", "Q7"):
        merged = corpus.execute(query, k=10)
        unsharded = ds.execute(query, k=10, use_cache=False)
        identical = [
            (a.mapping_id, a.probability, a.matches) for a in merged
        ] == [(a.mapping_id, a.probability, a.matches) for a in unsharded]
        print(f"{query}: {len(merged)} answers, identical to unsharded: {identical}")

    print("\n" + corpus.explain("Q2").format())

    # 2. Serve the corpus: batches fan out over the pool, shard evaluation
    # runs inline in each worker, merged results land in the result cache.
    with QueryService(corpus, max_workers=4) as service:
        service.execute_many(["Q1", "Q2", "Q7"], k=10)
        service.execute_many(["Q1", "Q2", "Q7"], k=10)  # warm: served by cache
        stats = service.stats()
        print(f"\nservice: {stats['submitted']} submitted, "
              f"cache hits {stats['result_cache']['hits']}")

    # 3. A corpus across datasets: global top-k with bound-based skipping.
    multi = repro.ShardedCorpus.from_datasets(["D1", "D2", "D7"], h=25)
    execution = multi.gather("//ContactName", k=5)
    print(f"\nglobal top-5 across {len(multi.sessions)} datasets "
          f"({execution.fan_out} shards evaluated, "
          f"{execution.skipped_shards} skipped):")
    for answer in execution.answers:
        print(f"  {answer.dataset}: mapping {answer.mapping_id} "
              f"p={answer.probability:.4f} matches={len(answer.matches)}")


if __name__ == "__main__":
    main()
