"""B2B purchase-order integration: query an XCBL document through an Apertum schema.

This is the paper's headline scenario (dataset D7): a company receives
purchase orders as XCBL documents but its applications are written against an
Apertum-style target schema.  The schema matching between the two standards
is uncertain, so the example opens one engine session on D7 and

* lets it derive the 100 most probable mappings and the block tree,
* answers the ten evaluation queries (Table III) under all three evaluation
  plans (``basic`` vs ``blocktree`` vs the default ``compiled`` bitset
  core), reporting the answers and the speed-ups,
* shows batched evaluation of the whole workload against one session, and
* asks for a top-k restriction through the fluent builder.

Run with:  python examples/purchase_order_integration.py
"""

from __future__ import annotations

import time

import repro


def timed(func, *args, **kwargs):
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - started, result


def main() -> None:
    ds = repro.Dataspace.from_dataset("D7", h=100)
    print(f"dataset D7: {ds.source_schema.name} ({len(ds.source_schema)} elements) "
          f"-> {ds.target_schema.name} ({len(ds.target_schema)} elements)")
    print(f"matcher produced {ds.matching.capacity} correspondences")

    print(f"|M| = {len(ds.mapping_set)} possible mappings, "
          f"o-ratio = {ds.mapping_set.o_ratio():.2f}")

    block_tree = ds.block_tree
    print(f"block tree: {block_tree.num_blocks} c-blocks, "
          f"compression {block_tree.compression_ratio():.1%}, "
          f"built in {block_tree.construction_seconds * 1000:.1f} ms")
    print(f"source document: {ds.document.name} with {len(ds.document)} nodes\n")

    print(f"{'query':<6} {'answers':>8} {'basic':>10} {'block-tree':>12} {'compiled':>10}")
    total_basic = total_tree = total_compiled = 0.0
    for query_id in repro.QUERY_IDS:
        # Warm the prepared query's resolve/filter caches and the compiled
        # bitset view so the timed runs measure pure evaluation, not
        # one-time compilation work.
        ds.prepare(query_id).relevant_mappings()
        ds.compiled
        basic_time, basic_result = timed(ds.query(query_id).plan("basic").execute)
        tree_time, tree_result = timed(ds.query(query_id).plan("blocktree").execute)
        compiled_time, compiled_result = timed(
            ds.query(query_id).plan("compiled").no_cache().execute
        )
        reference = {(a.mapping_id, a.matches) for a in basic_result}
        assert reference == {(a.mapping_id, a.matches) for a in tree_result}
        assert reference == {(a.mapping_id, a.matches) for a in compiled_result}
        total_basic += basic_time
        total_tree += tree_time
        total_compiled += compiled_time
        print(f"{query_id:<6} {len(tree_result.non_empty()):>8} "
              f"{basic_time * 1000:>9.1f}m {tree_time * 1000:>11.1f}m "
              f"{compiled_time * 1000:>9.1f}m")
    print(f"\ntotal: basic {total_basic * 1000:.1f} ms, "
          f"block-tree {total_tree * 1000:.1f} ms, "
          f"compiled {total_compiled * 1000:.1f} ms "
          f"({total_basic / total_compiled:.1f}x over basic)")

    # The whole Table III workload in one batched call: the session prepares
    # every query, selects the plan once, and reuses its cached artifacts.
    batch_time, batch_results = timed(ds.batch, list(repro.QUERY_IDS))
    print(f"\nbatch: all {len(batch_results)} queries in {batch_time * 1000:.1f} ms "
          f"(prepared queries cached: second run "
          f"{timed(ds.batch, list(repro.QUERY_IDS))[0] * 1000:.1f} ms)")

    # A user who only cares about the most credible interpretations can ask
    # for the top-k answers instead.
    topk_time, topk = timed(ds.query("Q7").top_k(10).execute)
    full_time, _ = timed(ds.query("Q7").execute)
    print(f"\ntop-10 PTQ for Q7: {len(topk)} answers in {topk_time * 1000:.1f} ms "
          f"(full PTQ takes {full_time * 1000:.1f} ms)")
    best = topk.answers[0]
    print(f"most probable mapping: {best.mapping_id} (p={best.probability:.3f}), "
          f"{len(best.matches)} matches")

    # How was it evaluated?  The engine explains its plan choice.
    print("\nexplain Q7 (top-10):")
    print(ds.query("Q7").top_k(10).explain().format())


if __name__ == "__main__":
    main()
