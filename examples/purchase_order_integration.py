"""B2B purchase-order integration: query an XCBL document through an Apertum schema.

This is the paper's headline scenario (dataset D7): a company receives
purchase orders as XCBL documents but its applications are written against an
Apertum-style target schema.  The schema matching between the two standards
is uncertain, so the example

* derives the 100 most probable mappings from the matcher output,
* builds the block tree over them, and
* answers the ten evaluation queries (Table III) both with the basic
  per-mapping algorithm and with the block-tree algorithm, reporting the
  answers and the speed-up.

Run with:  python examples/purchase_order_integration.py
"""

from __future__ import annotations

import time

import repro


def timed(func, *args, **kwargs):
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - started, result


def main() -> None:
    dataset = repro.load_dataset("D7")
    print(f"dataset D7: {dataset.source_schema.name} ({len(dataset.source_schema)} elements) "
          f"-> {dataset.target_schema.name} ({len(dataset.target_schema)} elements)")
    print(f"matcher produced {dataset.matching.capacity} correspondences")

    mappings = repro.build_mapping_set("D7", 100)
    print(f"|M| = {len(mappings)} possible mappings, o-ratio = {mappings.o_ratio():.2f}")

    block_tree = repro.build_block_tree(mappings)
    print(f"block tree: {block_tree.num_blocks} c-blocks, "
          f"compression {block_tree.compression_ratio():.1%}, "
          f"built in {block_tree.construction_seconds * 1000:.1f} ms")

    document = repro.load_source_document("D7")
    print(f"source document: {document.name} with {len(document)} nodes\n")

    print(f"{'query':<6} {'answers':>8} {'basic':>10} {'block-tree':>12} {'saving':>8}")
    total_basic = total_tree = 0.0
    for query_id, query in repro.standard_queries().items():
        basic_time, basic_result = timed(repro.evaluate_ptq_basic, query, mappings, document)
        tree_time, tree_result = timed(
            repro.evaluate_ptq_blocktree, query, mappings, document, block_tree
        )
        assert {(a.mapping_id, a.matches) for a in basic_result} == {
            (a.mapping_id, a.matches) for a in tree_result
        }
        total_basic += basic_time
        total_tree += tree_time
        saving = 1.0 - tree_time / basic_time if basic_time else 0.0
        print(f"{query_id:<6} {len(tree_result.non_empty()):>8} "
              f"{basic_time * 1000:>9.1f}m {tree_time * 1000:>11.1f}m {saving:>7.1%}")
    print(f"\ntotal: basic {total_basic * 1000:.1f} ms, block-tree {total_tree * 1000:.1f} ms "
          f"({1.0 - total_tree / total_basic:.1%} saved)")

    # A user who only cares about the most credible interpretations can ask
    # for the top-k answers instead.
    query = repro.load_query("Q7")
    topk_time, topk = timed(
        repro.evaluate_topk_ptq, query, mappings, document, k=10, block_tree=block_tree
    )
    full_time, _ = timed(repro.evaluate_ptq_blocktree, query, mappings, document, block_tree)
    print(f"\ntop-10 PTQ for Q7: {len(topk)} answers in {topk_time * 1000:.1f} ms "
          f"(full PTQ takes {full_time * 1000:.1f} ms)")
    best = topk.answers[0]
    print(f"most probable mapping: {best.mapping_id} (p={best.probability:.3f}), "
          f"{len(best.matches)} matches")


if __name__ == "__main__":
    main()
